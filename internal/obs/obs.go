// Package obs is the shared observability core: allocation-free metric
// primitives (atomic counters, gauges and fixed-bucket latency histograms
// with quantile extraction), a registry that renders the Prometheus text
// exposition format, and a lightweight per-request stage span. Every layer
// of the serving and training stack — the inference kernels, the caches,
// the model registry, the worker pools and the HTTP servers — records into
// series registered here, and cmd/hotserve's GET /metrics (plus the
// training CLIs' -metrics dump) renders the one shared picture.
//
// The package is deliberately dependency-free (standard library only) and
// sits at the very bottom of the dependency order, below even mltree, so
// any package may instrument itself.
//
// Hot-path contract: instrumentation on the descent/serve hot paths must
// be allocation-free. Counter.Add, Gauge.Set and Histogram.Observe are
// single atomic operations (Observe adds one bounded CAS loop for the sum)
// against pre-registered series — no maps, no fmt, no interface boxing.
// Register series once, at package or server init, and hold the returned
// pointer; never look a series up per request.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use, but series meant for /metrics must come from Registry.Counter so
// they render.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge (a value that can go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap — the histogram
// sum. Loses no updates under concurrency; ordering is irrelevant because
// addition commutes (up to float rounding).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Histogram is a fixed-bucket histogram: len(bounds)+1 atomic bucket
// counters (the last is the overflow bucket) plus a count and a sum.
// Observe is allocation-free and safe for concurrent use; bucket bounds
// are immutable after construction.
type Histogram struct {
	bounds []float64 // ascending upper (inclusive) bucket bounds
	counts []atomic.Uint64
	sum    atomicFloat
}

// NewHistogram returns a histogram over the given ascending upper bucket
// bounds (values above the last bound land in an implicit overflow
// bucket). Panics on empty or non-ascending bounds — bucket layout is a
// programming decision, not input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v: one atomic add on the owning bucket plus the CAS sum
// update. NaN observations are dropped (a NaN would poison the sum and fit
// no bucket).
func (h *Histogram) Observe(v float64) {
	if v != v { // NaN
		return
	}
	// Binary search for the first bound >= v (upper-inclusive buckets, the
	// Prometheus `le` convention); misses every bound -> overflow bucket.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds — the unit every *_seconds series
// uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot captures the histogram's current state. Concurrent Observes
// may straddle the capture (a bucket read before its sibling), so a
// snapshot is per-bucket consistent, not globally; Count is derived from
// the captured buckets so a snapshot is always internally coherent.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Reset zeroes every bucket and the sum. Best-effort under concurrency:
// an Observe racing the reset lands wholly before or wholly after per
// field. Meant for tools that reuse a process between measured phases,
// not for the serving path.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.store(0)
}

// HistSnapshot is a point-in-time histogram capture: per-bucket (non-
// cumulative) counts, one per bound plus the trailing overflow bucket.
// Snapshots from histograms (or scrapes) with identical bounds can be
// merged and subtracted, which is how hotblast isolates one load phase
// from a server's lifetime totals.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// boundsEqual reports whether two bound slices are identical.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge returns the element-wise sum of two snapshots. Panics when the
// bucket layouts differ — merging histograms of different shapes is
// meaningless.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if !boundsEqual(s.Bounds, o.Bounds) {
		panic("obs: merging histogram snapshots with different bucket bounds")
	}
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Sub returns this snapshot minus an earlier one of the same histogram —
// the observations that landed between the two captures. Panics on
// mismatched bounds; buckets where prev exceeds s (a reset in between)
// clamp to zero.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if !boundsEqual(s.Bounds, prev.Bounds) {
		panic("obs: subtracting histogram snapshots with different bucket bounds")
	}
	out := HistSnapshot{Bounds: s.Bounds, Counts: make([]uint64, len(s.Counts))}
	for i := range s.Counts {
		if s.Counts[i] > prev.Counts[i] {
			out.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
		out.Count += out.Counts[i]
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	return out
}

// Quantile extracts the q-th quantile (0 < q <= 1) by linear
// interpolation within the owning bucket, the same estimate PromQL's
// histogram_quantile computes. Observations in the overflow bucket clamp
// to the highest bound. Returns NaN on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		within := rank - float64(cum-c)
		return lo + (s.Bounds[i]-lo)*(within/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50, P90, P99 and P999 are the standard latency quantiles.
func (s HistSnapshot) P50() float64  { return s.Quantile(0.50) }
func (s HistSnapshot) P90() float64  { return s.Quantile(0.90) }
func (s HistSnapshot) P99() float64  { return s.Quantile(0.99) }
func (s HistSnapshot) P999() float64 { return s.Quantile(0.999) }

// LatencyBuckets is the default request-level bucket layout: 100µs to 10s,
// roughly 2.5x per step. Suits end-to-end HTTP and stage latencies.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// MicroLatencyBuckets is the kernel-level layout: 1µs to 250ms, for stages
// (quantize, descend, cache fetch) that finish well under a millisecond.
var MicroLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	0.01, 0.025, 0.05, 0.1, 0.25,
}

// MaxSpanStages bounds the per-request span's stage vector. Eight covers
// every pipeline in the repo with room to grow; a fixed array keeps the
// span a stack value with no per-request allocation.
const MaxSpanStages = 8

// Span is a lightweight per-request stage timer: Mark(stage) charges the
// time since the previous mark to that stage, so a handler interleaving
// stages (admission wait, artifact lookup, predict, rank, encode) ends up
// with an additive decomposition of its total latency. A Span is a plain
// value — declare it as a local, no pool, no allocation — and is not safe
// for concurrent use (one request, one goroutine, one span).
type Span struct {
	begin time.Time
	mark  time.Time
	dur   [MaxSpanStages]time.Duration
}

// StartSpan begins a span at now.
func StartSpan() Span {
	now := time.Now()
	return Span{begin: now, mark: now}
}

// Mark charges the time since the previous mark (or the start) to stage
// and advances the mark. Stages may repeat; durations accumulate.
func (s *Span) Mark(stage int) {
	now := time.Now()
	s.dur[stage] += now.Sub(s.mark)
	s.mark = now
}

// Stage returns the accumulated duration of one stage.
func (s *Span) Stage(stage int) time.Duration { return s.dur[stage] }

// Total returns the time since the span started.
func (s *Span) Total() time.Duration { return time.Since(s.begin) }
