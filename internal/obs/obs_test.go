package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// Observations exactly on a bound land in that bound's bucket (le is
// upper-inclusive), just past it in the next, and past the last bound in
// the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 3.9, 4.0, 4.0001, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // (..1], (1..2], (2..4], (4..inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 1.0001 + 2 + 3.9 + 4 + 4.0001 + 100
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("NaN observation recorded: %+v", s)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// Quantiles on a known uniform distribution: 1..1000 into buckets of 100.
// Linear interpolation within a bucket should recover the exact ranks.
func TestHistogramQuantilesUniform(t *testing.T) {
	bounds := make([]float64, 10)
	for i := range bounds {
		bounds[i] = float64((i + 1) * 100)
	}
	h := NewHistogram(bounds)
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {0.999, 999}, {1.0, 1000},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1.0 {
			t.Errorf("q%v = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if got := s.P50(); math.Abs(got-500) > 1.0 {
		t.Errorf("P50 = %v, want ~500", got)
	}
}

// A two-point distribution: quantiles below the mass split interpolate in
// the first occupied bucket; overflow observations clamp to the top bound.
func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Snapshot().Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // all overflow
	}
	if got := h.Snapshot().P99(); got != 2 {
		t.Fatalf("overflow-only P99 = %v, want clamp to 2", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bsum uint64
	for _, c := range s.Counts {
		bsum += c
	}
	if bsum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bsum, s.Count)
	}
}

func TestSnapshotMergeSubReset(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	a := h.Snapshot()
	h.Observe(1.7)
	h.Observe(3)
	b := h.Snapshot()

	delta := b.Sub(a)
	if delta.Count != 2 || delta.Counts[1] != 1 || delta.Counts[2] != 1 {
		t.Fatalf("sub delta wrong: %+v", delta)
	}
	if math.Abs(delta.Sum-4.7) > 1e-9 {
		t.Fatalf("sub sum = %v, want 4.7", delta.Sum)
	}

	m := a.Merge(delta)
	if m.Count != b.Count || m.Counts[1] != b.Counts[1] {
		t.Fatalf("merge(a, b-a) != b: %+v vs %+v", m, b)
	}

	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
	// Sub across a reset clamps instead of underflowing.
	h.Observe(0.5)
	d2 := h.Snapshot().Sub(b)
	if d2.Counts[0] != 0 || d2.Count != 0 {
		t.Fatalf("sub across reset should clamp: %+v", d2)
	}

	other := NewHistogram([]float64{1, 3}).Snapshot()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("merge with mismatched bounds did not panic")
			}
		}()
		a.Merge(other)
	}()
}

func TestSpanStages(t *testing.T) {
	sp := StartSpan()
	time.Sleep(2 * time.Millisecond)
	sp.Mark(0)
	time.Sleep(2 * time.Millisecond)
	sp.Mark(1)
	sp.Mark(1) // repeat accumulates ~0 extra
	if sp.Stage(0) <= 0 || sp.Stage(1) <= 0 {
		t.Fatalf("stages not recorded: %v %v", sp.Stage(0), sp.Stage(1))
	}
	if sp.Total() < sp.Stage(0)+sp.Stage(1) {
		t.Fatalf("total %v < stage sum %v", sp.Total(), sp.Stage(0)+sp.Stage(1))
	}
}

// The hot-path contract: recording into pre-registered series allocates
// nothing.
func TestRecordPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zeroalloc_total", "")
	g := r.Gauge("zeroalloc_gauge", "")
	h := r.Histogram("zeroalloc_seconds", "", LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.002)
		sp := StartSpan()
		sp.Mark(0)
		h.ObserveDuration(sp.Stage(0))
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v per op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}
