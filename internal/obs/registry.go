package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension, rendered as key="value". Labels are fixed
// at registration — series are fully pre-registered, so the request path
// never formats or hashes a label.
type Label struct {
	Key, Value string
}

// LabeledValue is one sample of a dynamic gauge family (GaugeSet): its
// label set and current value, produced at scrape time.
type LabeledValue struct {
	Labels []Label
	Value  float64
}

// collector kinds. Func-backed collectors read their value at scrape time
// (for state that already has an authoritative owner, like cache Stats),
// the rest are written on the hot path.
type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindGaugeSet
)

// promType maps a collector kind to its exposition TYPE.
func (k seriesKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered (name, labels) sample stream.
type series struct {
	labels string // rendered, brace-free: `k1="v1",k2="v2"`; "" when unlabeled
	kind   seriesKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() uint64
	gf     func() float64
	gs     func() []LabeledValue
}

// family is every series sharing one metric name.
type family struct {
	name, help string
	kind       seriesKind
	bounds     []float64 // histogram families: shared bucket layout
	byLabels   map[string]*series
}

// Registry holds named metric families and renders them in the Prometheus
// text exposition format. Registration is idempotent: registering an
// existing (name, labels) pair returns the existing collector (func-backed
// collectors swap in the new callback — last registration wins, which is
// what reload/re-setup flows want). Mismatched kinds or histogram bounds
// on one name panic: that is a wiring bug, not runtime input.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// std is the process-wide default registry: library packages (mltree,
// forecast, registry, parallel, the caches) register here at init, and
// hotserve /metrics plus the CLIs' -metrics dump render it.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels renders a label set sorted by key, so a (name, labels)
// identity is order-independent and scrapes are byte-stable.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// SeriesName renders the canonical series identity `name{labels}` exactly
// as WriteText emits it — scrape consumers (hotblast) construct lookup
// keys with this.
func SeriesName(name string, labels ...Label) string {
	ls := renderLabels(labels)
	if ls == "" {
		return name
	}
	return name + "{" + ls + "}"
}

// register resolves or creates the series for (name, labels), enforcing
// kind agreement. make builds a fresh series body on first registration;
// replace (optional) updates an existing one (func swap).
func (r *Registry) register(name, help string, kind seriesKind, labels []Label,
	bounds []float64, make func() *series, replace func(*series)) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, bounds: bounds,
			byLabels: map[string]*series{}}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s",
			name, kind.promType(), fam.kind.promType()))
	}
	if kind == kindHistogram && !boundsEqual(fam.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %s re-registered with different bounds", name))
	}
	if s, ok := fam.byLabels[key]; ok {
		if replace != nil {
			replace(s)
		}
		return s
	}
	s := make()
	s.labels = key
	s.kind = kind
	fam.byLabels[key] = s
	return s
}

// Counter registers (or returns) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, nil,
		func() *series { return &series{c: &Counter{}} }, nil)
	return s.c
}

// Gauge registers (or returns) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, nil,
		func() *series { return &series{g: &Gauge{}} }, nil)
	return s.g
}

// Histogram registers (or returns) the histogram series name{labels} over
// the given bucket bounds. Every series of one family must agree on the
// bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, bounds,
		func() *series { return &series{h: NewHistogram(bounds)} }, nil)
	return s.h
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for monotonic state that already has an authoritative
// owner (cache hit totals). Re-registering swaps in the new fn. fn must
// not call back into this registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, kindCounterFunc, labels, nil,
		func() *series { return &series{cf: fn} }, func(s *series) { s.cf = fn })
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time. Re-registering swaps in the new fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels, nil,
		func() *series { return &series{gf: fn} }, func(s *series) { s.gf = fn })
}

// GaugeSet registers a dynamic gauge family: fn returns the family's full
// sample set at scrape time, labels and all. For inventories whose label
// sets change at runtime (the served-artifact set across hot reloads) —
// the scrape pays the allocation, the serving path pays nothing.
// Re-registering swaps in the new fn.
func (r *Registry) GaugeSet(name, help string, fn func() []LabeledValue) {
	r.register(name, help, kindGaugeSet, nil, nil,
		func() *series { return &series{gs: fn} }, func(s *series) { s.gs = fn })
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample emits one `name{labels} value` line.
func writeSample(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	}
	return err
}

// joinLabels appends extra to a rendered label block.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series within a family sorted
// by label block, histograms as cumulative `_bucket{le=...}` plus `_sum`
// and `_count`. The scrape path may allocate — only the record path is
// bound by the zero-allocation rule.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := r.families[name]
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, fam.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.kind.promType()); err != nil {
			return err
		}
		keys := make([]string, 0, len(fam.byLabels))
		for k := range fam.byLabels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeSeries(w, fam, fam.byLabels[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series' samples.
func writeSeries(w io.Writer, fam *family, s *series) error {
	switch s.kind {
	case kindCounter:
		return writeSample(w, fam.name, s.labels, float64(s.c.Value()))
	case kindGauge:
		return writeSample(w, fam.name, s.labels, float64(s.g.Value()))
	case kindCounterFunc:
		return writeSample(w, fam.name, s.labels, float64(s.cf()))
	case kindGaugeFunc:
		return writeSample(w, fam.name, s.labels, s.gf())
	case kindGaugeSet:
		samples := s.gs()
		sort.Slice(samples, func(i, j int) bool {
			return renderLabels(samples[i].Labels) < renderLabels(samples[j].Labels)
		})
		for _, lv := range samples {
			if err := writeSample(w, fam.name, renderLabels(lv.Labels), lv.Value); err != nil {
				return err
			}
		}
		return nil
	case kindHistogram:
		snap := s.h.Snapshot()
		var cum uint64
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatValue(snap.Bounds[i])
			}
			lb := joinLabels(s.labels, `le="`+le+`"`)
			if err := writeSample(w, fam.name+"_bucket", lb, float64(cum)); err != nil {
				return err
			}
		}
		if err := writeSample(w, fam.name+"_sum", s.labels, snap.Sum); err != nil {
			return err
		}
		return writeSample(w, fam.name+"_count", s.labels, float64(snap.Count))
	}
	return nil
}

// Handler returns an http.Handler serving the registries' text exposition
// concatenated in argument order — a /metrics endpoint. Families must not
// repeat across the registries (hotserve keeps server-scoped series in its
// own registry precisely so they cannot collide with Default's).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range regs {
			if err := reg.WriteText(w); err != nil {
				return
			}
		}
	})
}
