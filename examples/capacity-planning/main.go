// Capacity planning: the paper's first motivating use case. Investment
// plans are finalised weeks in advance, so the operator needs hot-spot
// forecasts at long horizons (h = 29 days, four weeks ahead) to direct
// capex toward the sectors that will actually underperform.
//
// The paper shows that even four weeks out, forecasts remain more than an
// order of magnitude better than random, because persistent and
// weekly-regular sectors carry most of the signal.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forecast"
	"repro/internal/mathx"
)

func main() {
	log.SetFlags(0)

	p, err := core.NewPipeline(core.Config{
		Seed:        11,
		Sectors:     500,
		Weeks:       18,
		TrainDays:   4,
		ForestTrees: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d sectors over %d days\n\n", p.Sectors(), p.Days())

	// Four-week-ahead forecasts at several planning days, comparing
	// horizons the way Fig. 9 does.
	const w = 7
	horizons := []int{1, 7, 14, 29}
	planningDays := []int{55, 65, 75}

	fmt.Printf("%-6s", "h")
	for _, model := range []string{"Average", "RF-F1"} {
		fmt.Printf("%14s", model+" lift")
	}
	fmt.Println()
	for _, h := range horizons {
		var liftAvg, liftRF []float64
		for _, t := range planningDays {
			labels := p.Scores.Yd.Col(t + h)
			prev := eval.Prevalence(labels)
			if prev == 0 {
				continue
			}
			avg, err := p.Forecast(core.Average, forecast.BeHot, t, h, w)
			if err != nil {
				log.Fatal(err)
			}
			rf, err := p.Forecast(core.RFF1, forecast.BeHot, t, h, w)
			if err != nil {
				log.Fatal(err)
			}
			liftAvg = append(liftAvg, eval.Lift(eval.AveragePrecision(avg, labels), prev))
			liftRF = append(liftRF, eval.Lift(eval.AveragePrecision(rf, labels), prev))
		}
		fmt.Printf("%-6d%14.1f%14.1f\n", h, mathx.Mean(liftAvg), mathx.Mean(liftRF))
	}

	// Produce the capex shortlist: sectors predicted hot four weeks out.
	const t, h = 75, 29
	scores, err := p.Forecast(core.RFF1, forecast.BeHot, t, h, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapex shortlist for day %d (four weeks after day %d):\n", t+h, t)
	classCounts := map[string]int{}
	for _, sector := range core.TopK(scores, 20) {
		classCounts[p.Dataset.Topo.Sectors[sector].Class.String()]++
	}
	for class, n := range classCounts {
		fmt.Printf("  %-12s %d of top 20\n", class, n)
	}
	fmt.Println("\nfour-week forecasts stay far above random (paper: lift > 12 at h=29),")
	fmt.Println("so the shortlist is a usable planning input despite the horizon.")
}
