// Imputation: repair missing KPI measurements with the paper's stacked
// denoising autoencoder (Sec. II-C) and compare it against forward-fill and
// linear-interpolation baselines on deliberately hidden entries.
package main

import (
	"fmt"
	"log"

	"repro/internal/impute"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// A small network with a realistic missing-value pattern: isolated
	// points, whole-hour rows and multi-hour outages.
	cfg := simnet.DefaultConfig()
	cfg.Seed = 5
	cfg.Sectors = 60
	cfg.Weeks = 6
	cfg.MissingTarget = 0.06
	ds, err := simnet.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d sectors, %.1f%% of KPI entries missing\n",
		ds.K.N, 100*ds.K.MissingFraction())

	// Work on a 6-KPI subset so the autoencoder trains in seconds. The
	// architecture is the paper's (halving dense layers + PReLU, RMSprop);
	// only the width and epoch budget are scaled down.
	kpiIdx := []int{0, 5, 7, 8, 13, 18}
	sub := tensor.NewTensor3(ds.K.N, ds.K.T, len(kpiIdx))
	for i := 0; i < ds.K.N; i++ {
		for j := 0; j < ds.K.T; j++ {
			for fi, f := range kpiIdx {
				sub.Set(i, j, fi, ds.K.At(i, j, f))
			}
		}
	}

	icfg := impute.DefaultConfig()
	icfg.Seed = 5
	icfg.Depth = 3
	icfg.Epochs = 8
	icfg.LearningRate = 5e-4
	fmt.Println("training the denoising autoencoder...")
	im, err := impute.Train(sub, icfg)
	if err != nil {
		log.Fatal(err)
	}

	// Hide 3% of the observed entries and measure reconstruction error.
	fmt.Println("evaluating on hidden entries (normalised RMSE, lower is better):")
	ae, err := impute.Evaluate(sub, 0.03, 99, im.Impute)
	if err != nil {
		log.Fatal(err)
	}
	ff, err := impute.Evaluate(sub, 0.03, 99, impute.Wrap(impute.ForwardFill))
	if err != nil {
		log.Fatal(err)
	}
	li, err := impute.Evaluate(sub, 0.03, 99, impute.Wrap(impute.LinearInterpolate))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  autoencoder     %.3f\n", ae)
	fmt.Printf("  forward-fill    %.3f\n", ff)
	fmt.Printf("  linear-interp   %.3f\n", li)

	// Repair the tensor for downstream scoring.
	filled, err := im.Impute(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter imputation: %.1f%% missing (was %.1f%%)\n",
		100*filled.MissingFraction(), 100*sub.MissingFraction())
}
