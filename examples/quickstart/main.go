// Quickstart: generate a synthetic cellular network, score it, forecast
// tomorrow's hot spots with the paper's best model (RF-F1), and measure the
// lift over a random ranking.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forecast"
)

func main() {
	log.SetFlags(0)

	// 1. Build the pipeline: generate -> filter -> score -> label.
	p, err := core.NewPipeline(core.Config{
		Seed:        42,
		Sectors:     300,
		Weeks:       10,
		TrainDays:   4,
		ForestTrees: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d sectors over %d days (%d discarded by the missing-data filter)\n",
		p.Sectors(), p.Days(), p.Discarded)

	// 2. Forecast: at day t=50, predict hot spots for t+h with h=1 using
	// one week of history (the paper's headline setting).
	const t, h, w = 50, 1, 7
	scores, err := p.Forecast(core.RFF1, forecast.BeHot, t, h, w)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the operator-facing ranking.
	fmt.Printf("\ntop 10 sectors most likely to be hot on day %d:\n", t+h)
	for rank, sector := range core.TopK(scores, 10) {
		sec := p.Dataset.Topo.Sectors[sector]
		fmt.Printf("  %2d. sector %-4d p=%.2f  (%s area, tower %d)\n",
			rank+1, sector, scores[sector], sec.Class, sec.Tower)
	}

	// 4. Evaluate against the truth that day.
	labels := p.Scores.Yd.Col(t + h)
	ap := eval.AveragePrecision(scores, labels)
	prev := eval.Prevalence(labels)
	fmt.Printf("\naverage precision %.3f against prevalence %.3f -> lift %.1fx over random\n",
		ap, prev, eval.Lift(ap, prev))

	// 5. Compare with the strongest baseline.
	avg, err := p.Forecast(core.Average, forecast.BeHot, t, h, w)
	if err != nil {
		log.Fatal(err)
	}
	apAvg := eval.AveragePrecision(avg, labels)
	fmt.Printf("Average-baseline AP %.3f -> RF-F1 is %+.0f%% better (paper reports +14%% on this task)\n",
		apAvg, eval.Delta(apAvg, ap))
}
