#!/usr/bin/env sh
# Walkthrough of the adversarial scenario-pack evaluation:
#
#   list packs -> run the model x scenario matrix -> inspect cells ->
#   schema-diff against the committed baseline
#
# Run from the repository root:
#
#   sh examples/scenarios/run.sh
#
# Everything happens in a scratch directory; the script cleans up after
# itself. See README.md "Adversarial scenario packs" for the story.
set -eu

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "==> building hotscen"
go build -o "$WORK/hotscen" ./cmd/hotscen

echo "==> 1. the built-in packs and what each overlay does to the labels"
"$WORK/hotscen" -list

echo "==> 2. run two packs x three models on a small grid"
"$WORK/hotscen" -packs baseline,outage-wave -models Random,Average,Tree \
  -sectors 150 -weeks 8 -o "$WORK/matrix.json"

echo "==> 3. the per-(model, scenario) cells (mean lift per pack)"
grep -E '"pack"|"model"|"mean_lift"' "$WORK/matrix.json"

echo "==> 4. schema-diff a fresh run against the committed baseline"
"$WORK/hotscen" -packs baseline,outage-wave -models Random,Average,Tree \
  -sectors 150 -weeks 8 -o "$WORK/again.json" -diff BENCH_scenarios.json

echo "==> 5. the full matrix (all 7 packs x all 9 models) is one command:"
echo "       hotscen -packs all -models all -o matrix.json"
echo "==> done"
