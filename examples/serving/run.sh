#!/usr/bin/env sh
# Walkthrough of the registry serving loop:
#
#   train -> publish -> serve -> forecast (single + batch) -> retrain ->
#   publish -> hot reload -> prune
#
# Run from the repository root:
#
#   sh examples/serving/run.sh
#
# Everything happens in a scratch directory and a localhost port; the
# script cleans up after itself. See README.md "Serving" for the story.
set -eu

PORT="${PORT:-8191}"
WORK="$(mktemp -d)"
REG="$WORK/models"
DATA="-sectors 150 -weeks 8 -seed 2"
SERVE_PID=""
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "==> building hotforecast and hotserve"
go build -o "$WORK/hotforecast" ./cmd/hotforecast
go build -o "$WORK/hotserve" ./cmd/hotserve

echo "==> 1. train RF-F1 at day 30 and publish it as version 1"
"$WORK/hotforecast" $DATA -models RF-F1 -t 30 -h 3 -w 7 -registry "$REG"

echo "==> 2. serve the registry (same dataset flags: the artifact's"
echo "       dataset fingerprint is checked at load time)"
"$WORK/hotserve" $DATA -registry "$REG" -watch 0 -addr "127.0.0.1:$PORT" &
SERVE_PID=$!
i=0
until curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "hotserve never came up" >&2; exit 1; }
  sleep 0.2
done

echo "==> 3. single forecast: top-5 sectors for day t+h"
curl -sf "http://127.0.0.1:$PORT/forecast?model=RF-F1&t=31&k=5"
echo

echo "==> 4. batch forecast: many queries in one round trip"
curl -sf -X POST "http://127.0.0.1:$PORT/forecast/batch" \
  -d '{"queries":[{"model":"RF-F1","t":30,"k":5},{"model":"RF-F1","t":31,"k":5}]}'
echo

echo "==> 5. a new day of data arrived: retrain at day 31, publish version 2"
"$WORK/hotforecast" $DATA -models RF-F1 -t 31 -h 3 -w 7 -registry "$REG"

echo "==> 6. hot-swap the new version in (zero downtime)"
curl -sf -X POST "http://127.0.0.1:$PORT/reload"
echo
curl -sf "http://127.0.0.1:$PORT/healthz"
echo

echo "==> 7. retire old versions: keep the newest 1 per task"
"$WORK/hotforecast" -registry "$REG" -prune 1

echo "==> done; registry contents:"
ls -l "$REG"
