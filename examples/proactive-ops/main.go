// Proactive operations: the paper's second motivating use case. An
// operator wants early warning of *emerging* hot spots — sectors that were
// healthy but are about to degrade persistently — so field teams can
// intervene before customers notice.
//
// This example trains the become-a-hot-spot forecaster and shows how the
// usage/congestion precursor ramps make emerging sectors detectable days
// ahead, while the Average-score baseline mostly ranks the already-hot
// sectors that will never "become" hot.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forecast"
	"repro/internal/mathx"
)

func main() {
	log.SetFlags(0)

	p, err := core.NewPipeline(core.Config{
		Seed:        7,
		Sectors:     700,
		Weeks:       18,
		TrainDays:   6,
		ForestTrees: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d sectors over %d days\n", p.Sectors(), p.Days())

	// Count upcoming become-events so the demo targets days that have them.
	becomeByDay := map[int]int{}
	totalEvents := 0
	for d := 0; d < p.Days(); d++ {
		for i := 0; i < p.Sectors(); i++ {
			if p.Ctx.YdBecome.At(i, d) > 0 {
				becomeByDay[d]++
				totalEvents++
			}
		}
	}
	fmt.Printf("emerging hot-spot events in the window: %d\n\n", totalEvents)

	const h, w = 3, 7
	evaluated, sumRF, sumAvg := 0, 0.0, 0.0
	for t := 50; t <= 85; t++ {
		evalDay := t + h
		if becomeByDay[evalDay] == 0 {
			continue
		}
		labels := p.Ctx.YdBecome.Col(evalDay)
		rf, err := p.Forecast(core.RFF1, forecast.BecomeHot, t, h, w)
		if err != nil {
			log.Fatal(err)
		}
		avg, err := p.Forecast(core.Average, forecast.BecomeHot, t, h, w)
		if err != nil {
			log.Fatal(err)
		}
		apRF := eval.AveragePrecision(rf, labels)
		apAvg := eval.AveragePrecision(avg, labels)
		if math.IsNaN(apRF) || math.IsNaN(apAvg) {
			continue
		}
		evaluated++
		sumRF += apRF
		sumAvg += apAvg
		if evaluated <= 5 {
			fmt.Printf("day %3d (+%d ahead): %d sectors about to turn hot; AP RF-F1 %.3f vs Average %.3f\n",
				evalDay, h, becomeByDay[evalDay], apRF, apAvg)
			reportHits(p, rf, labels)
		}
	}
	if evaluated == 0 {
		log.Fatal("no become-events in the evaluation range; increase sectors")
	}
	fmt.Printf("\nover %d event days: mean AP RF-F1 %.3f vs Average %.3f -> %+.0f%% (paper: classifiers up to +153%% on this task)\n",
		evaluated, sumRF/float64(evaluated), sumAvg/float64(evaluated),
		eval.Delta(sumAvg/float64(evaluated), sumRF/float64(evaluated)))
}

// reportHits prints where the true emerging sectors landed in the ranking.
func reportHits(p *core.Pipeline, scores, labels []float64) {
	order := mathx.ArgsortDesc(scores)
	for rank, idx := range order {
		if labels[idx] > 0 {
			sec := p.Dataset.Topo.Sectors[idx]
			fmt.Printf("    true emerging sector %d (%s area) ranked #%d of %d\n",
				idx, sec.Class, rank+1, len(order))
		}
		if rank > 100 {
			break
		}
	}
}
