// Dynamics: explore the spatio-temporal regularities of hot spots the way
// Sec. III of the paper does — duration histograms, weekly patterns, their
// temporal consistency, and the correlation-versus-distance structure that
// justifies spatially unconstrained forecasting.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/spatial"
)

func main() {
	log.SetFlags(0)

	p, err := core.NewPipeline(core.Config{Seed: 21, Sectors: 400, Weeks: 18})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d sectors over %d days\n\n", p.Sectors(), p.Days())

	// How long do hot spots last?
	hours := dynamics.HoursPerDayHistogram(p.Scores.Yh)
	fmt.Println("hours per day as hot spot (relative count):")
	for _, h := range []int{4, 8, 12, 16, 20, 24} {
		fmt.Printf("  %2dh: %.3f\n", h, hours[h-1])
	}

	days := dynamics.DaysPerWeekHistogram(p.Scores.Yd)
	fmt.Println("\ndays per week as hot spot:")
	for d := 1; d <= 7; d++ {
		fmt.Printf("  %dd: %.3f\n", d, days[d-1])
	}

	// Which weekly patterns dominate? (Table II)
	fmt.Println("\ntop 10 weekly patterns (never-hot excluded):")
	for rank, pat := range dynamics.WeeklyPatterns(p.Scores.Yd, 10) {
		fmt.Printf("  %2d. %s  %5.1f%%\n", rank+2, pat, pat.Percent)
	}

	// How stable are they week over week?
	cons := dynamics.WeeklyConsistency(p.Scores.Yd)
	fmt.Printf("\nweek-to-week pattern consistency: mean %.2f (paper: 0.6), median %.2f\n",
		cons.Mean, cons.Percentiles[2])

	// Does proximity imply similar behaviour? (Fig. 8)
	pts := make([]spatial.Point, p.Sectors())
	for i, sec := range p.Dataset.Topo.Sectors {
		pts[i] = spatial.Point{X: sec.X, Y: sec.Y}
	}
	cfg := spatial.DefaultCorrelationConfig()
	cfg.NeighborsPerSector = p.Sectors() / 2
	cfg.TopCorrelated = p.Sectors() / 5
	corr := spatial.CorrelationByDistance(p.Scores.Yh, pts, cfg)
	fmt.Println("\ncorrelation vs distance (median per bucket):")
	fmt.Println("  km      avg     best-of-top")
	for i := range corr.Average {
		a, b := corr.Average[i].Stats, corr.Best[i].Stats
		if a.N == 0 && b.N == 0 {
			continue
		}
		fmt.Printf("  %-7.1f %+6.2f  %+6.2f\n", corr.Average[i].EdgeKM, a.Median, b.Median)
	}
	fmt.Println("\nsame-tower sectors correlate strongly; average similarity dies within ~1 km,")
	fmt.Println("but near-twin behaviour exists at any distance -> forecast without spatial constraints.")
}
