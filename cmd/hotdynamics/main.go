// Command hotdynamics runs the paper's Sec. III descriptive analyses on a
// dataset: the hot-spot duration histograms (Fig. 6), the consecutive-run
// histograms (Fig. 7), the weekly-pattern table (Table II), the score
// distribution (Fig. 4) and the spatial correlation study (Fig. 8).
//
// Usage:
//
//	hotdynamics -in network.gob            # analyse a saved dataset
//	hotdynamics -sectors 600 -seed 1       # generate on the fly
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/score"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotdynamics: ")
	var (
		in        = flag.String("in", "", "dataset path (empty = generate)")
		sectors   = flag.Int("sectors", 600, "sectors when generating")
		seed      = flag.Uint64("seed", 1, "seed when generating")
		spatialOn = flag.Bool("spatial", true, "run the Fig 8 spatial analysis (O(n^2) in sectors)")
	)
	flag.Parse()

	env, err := prepare(*in, *sectors, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d sectors, %d days (%d discarded by the missing-data filter)\n\n",
		env.Ctx.Sectors(), env.Ctx.Days(), env.Discarded)

	fmt.Println(experiments.Fig01KPIExamples(env).Format())
	fmt.Println(experiments.Fig02ScoreAndLabel(env).Format())
	fmt.Println(experiments.Fig03LabelRaster(env).Format())
	fmt.Println(experiments.Fig04ScoreHistogram(env).Format())
	fmt.Println(experiments.Fig06HotSpotHistograms(env).Format())
	fmt.Println(experiments.Fig07ConsecutiveRuns(env).Format())
	fmt.Println(experiments.Tab02WeeklyPatterns(env).Format())
	if *spatialOn {
		fmt.Println(experiments.Fig08SpatialCorrelation(env).Format())
	}
}

// prepare builds an experiments.Env from a file or a fresh generation.
func prepare(path string, sectors int, seed uint64) (*experiments.Env, error) {
	scale := experiments.SmallScale()
	scale.Sectors = sectors
	scale.Seed = seed
	if path == "" {
		return experiments.Prepare(scale)
	}
	ds, err := simnet.LoadFile(path)
	if err != nil {
		return nil, err
	}
	keep := score.FilterSectors(ds.K, 0.5)
	sub := ds.SelectSectors(keep)
	set := score.Compute(sub.K, score.DefaultWeighting())
	ctx, err := forecast.NewContext(sub.K, sub.Grid.Calendar(), set, seed)
	if err != nil {
		return nil, err
	}
	return &experiments.Env{
		Scale: scale, Dataset: sub, Set: set, Ctx: ctx,
		Discarded: ds.N() - len(keep),
	}, nil
}
