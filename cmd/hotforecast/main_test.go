package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/forecast"
	"repro/internal/registry"
)

// TestRunSmoke evaluates two baselines on a tiny generated network and
// asserts the lift table parses.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-t", "30", "-h", "1,3", "-w", "7",
		"-models", "Average,Persist", "-workers", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "pipeline:") {
		t.Fatalf("missing pipeline header:\n%s", got)
	}
	if !strings.Contains(got, "h=1") || !strings.Contains(got, "h=3") {
		t.Fatalf("missing horizon columns:\n%s", got)
	}
	for _, model := range []string{"Average", "Persist"} {
		line := ""
		for _, l := range strings.Split(got, "\n") {
			if strings.HasPrefix(l, model) {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("no row for %s:\n%s", model, got)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("row %q should have model + 2 lift columns", line)
		}
		for _, f := range fields[1:] {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				t.Fatalf("unparseable lift %q in row %q", f, line)
			}
		}
	}
}

// TestRunDeterministicAcrossWorkers runs the same tiny sweep at two worker
// counts: the printed tables must match exactly.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	table := func(workers string) string {
		var buf strings.Builder
		err := run([]string{
			"-sectors", "150", "-weeks", "8", "-seed", "2",
			"-t", "30", "-h", "1", "-w", "7",
			"-models", "Average,Persist,Random", "-workers", workers,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := table("1"), table("4"); a != b {
		t.Fatalf("output differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}

// TestRunCSVStream: -csv streams every sweep record to the file alongside
// the printed lift table.
func TestRunCSVStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.csv")
	var buf strings.Builder
	err := run([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-t", "30,32", "-h", "1,3", "-w", "7",
		"-models", "Average,Persist", "-workers", "2",
		"-csv", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "streamed 8 records to ") {
		t.Fatalf("missing streamed summary:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// 2 ts x 2 hs x 1 w x 2 models, plus the header.
	if len(lines) != 9 {
		t.Fatalf("csv has %d lines, want 9:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "model,target,t,h,w,") {
		t.Fatalf("bad header %q", lines[0])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-t", "not-a-number"}, &strings.Builder{}); err == nil {
		t.Fatal("bad -t accepted")
	}
	if err := run([]string{"-target", "bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("bad -target accepted")
	}
}

// TestRunModelOutIn: the train-once workflow — -model-out writes an
// artifact, -model-in loads it and predicts deterministically against the
// same pipeline.
func TestRunModelOutIn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.hotm")
	pipeline := []string{"-sectors", "150", "-weeks", "8", "-seed", "2"}
	var buf strings.Builder
	err := run(append(pipeline,
		"-models", "Tree", "-t", "30", "-h", "3", "-w", "7",
		"-model-out", path), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "trained Tree") || !strings.Contains(got, path) {
		t.Fatalf("missing training summary:\n%s", got)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("artifact not written: %v", err)
	}

	predict := func() string {
		var out strings.Builder
		if err := run(append(pipeline, "-t", "30,32", "-model-in", path), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	got := predict()
	for _, want := range []string{"loaded Tree artifact", "t=30 forecast day 33", "t=32 forecast day 35", "psi="} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in prediction output:\n%s", want, got)
		}
	}
	if again := predict(); again != got {
		t.Fatalf("artifact predictions not deterministic:\n%s\nvs\n%s", got, again)
	}
}

// TestRunModelOutValidation: -model-out refuses ambiguous training tasks
// and cannot be combined with -model-in.
func TestRunModelOutValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.hotm")
	base := []string{"-sectors", "150", "-weeks", "8", "-seed", "2", "-w", "7"}
	if err := run(append(base, "-models", "Average,Persist", "-t", "30", "-h", "3", "-model-out", path), &strings.Builder{}); err == nil {
		t.Fatal("two models accepted for one artifact")
	}
	if err := run(append(base, "-models", "Average", "-t", "30,32", "-h", "3", "-model-out", path), &strings.Builder{}); err == nil {
		t.Fatal("two forecast days accepted for one artifact")
	}
	if err := run(append(base, "-models", "Average", "-t", "30", "-h", "1,3", "-model-out", path), &strings.Builder{}); err == nil {
		t.Fatal("two horizons accepted for one artifact")
	}
	if err := run(append(base, "-model-out", path, "-model-in", path), &strings.Builder{}); err == nil {
		t.Fatal("-model-out with -model-in accepted")
	}
	if err := run(append(base, "-model-in", filepath.Join(t.TempDir(), "missing.hotm")), &strings.Builder{}); err == nil {
		t.Fatal("missing artifact accepted")
	}
}

// TestRunRegistryPublishAndPrune: the -registry workflow — publish two
// versions of one task, verify the registry history, then prune to one.
func TestRunRegistryPublishAndPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models")
	base := []string{"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-models", "Average", "-h", "3", "-w", "7", "-registry", dir}
	var buf strings.Builder
	if err := run(append(base, "-t", "30"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "published version 1") {
		t.Fatalf("missing publish summary:\n%s", buf.String())
	}
	buf.Reset()
	if err := run(append(base, "-t", "31"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "published version 2") {
		t.Fatalf("second publish summary:\n%s", buf.String())
	}

	reg, err := registry.Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	key := registry.TaskKey{Model: "Average", Target: int(forecast.BeHot), H: 3, W: 7}
	if v, ok := reg.Latest(key); !ok || v.ID != 2 || v.Cutoff != 28 {
		t.Fatalf("latest after publishes = %v, %v", v, ok)
	}

	buf.Reset()
	if err := run([]string{"-registry", dir, "-prune", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pruned 1 version(s)") {
		t.Fatalf("prune summary:\n%s", buf.String())
	}
	reg2, err := registry.Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	tasks := reg2.List()
	if len(tasks) != 1 || len(tasks[0].Versions) != 1 || tasks[0].Versions[0].ID != 2 {
		t.Fatalf("history after prune = %+v", tasks)
	}
}

// TestRunRegistryVerify: the -verify fsck — clean registries pass, a
// corrupted artifact fails the run with the offending version named.
func TestRunRegistryVerify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models")
	base := []string{"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-models", "Average", "-h", "3", "-w", "7", "-registry", dir}
	if err := run(append(base, "-t", "30"), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-t", "31"), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-registry", dir, "-verify"}, &buf); err != nil {
		t.Fatalf("clean registry failed fsck: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "verified 2 version(s): all clean") {
		t.Fatalf("verify summary:\n%s", buf.String())
	}

	reg, err := registry.Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	key := registry.TaskKey{Model: "Average", Target: int(forecast.BeHot), H: 3, W: 7}
	v, ok := reg.Latest(key)
	if !ok {
		t.Fatal("latest missing")
	}
	if err := faultfs.BitFlipFile(filepath.Join(dir, v.File), -2, 3); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = run([]string{"-registry", dir, "-verify"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "1 of 2 version(s) failed verification") {
		t.Fatalf("corrupt registry passed fsck (err=%v)\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("CORRUPT version %d", v.ID)) {
		t.Fatalf("fsck report does not name the corrupt version:\n%s", buf.String())
	}
}

// TestRunRegistryValidation: flag combinations that would do nothing or
// conflict are rejected.
func TestRunRegistryValidation(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-registry", dir}, &strings.Builder{}); err == nil {
		t.Fatal("-registry without -models or -prune accepted")
	}
	if err := run([]string{"-verify"}, &strings.Builder{}); err == nil {
		t.Fatal("-verify without -registry accepted")
	}
	if err := run([]string{"-registry", dir, "-verify", "-models", "Average", "-t", "30", "-h", "3"},
		&strings.Builder{}); err == nil {
		t.Fatal("-verify combined with a publish accepted")
	}
	if err := run([]string{"-registry", dir, "-models", "Average,Trend", "-t", "30", "-h", "3"},
		&strings.Builder{}); err == nil {
		t.Fatal("-registry with two models accepted")
	}
	if err := run([]string{"-registry", dir, "-models", "Average", "-t", "30", "-h", "3",
		"-model-out", "x.hotm"}, &strings.Builder{}); err == nil {
		t.Fatal("-registry with -model-out accepted")
	}
	if err := run([]string{"-prune", "2"}, &strings.Builder{}); err == nil {
		t.Fatal("-prune without -registry accepted")
	}
}
