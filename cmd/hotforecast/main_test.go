package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRunSmoke evaluates two baselines on a tiny generated network and
// asserts the lift table parses.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-t", "30", "-h", "1,3", "-w", "7",
		"-models", "Average,Persist", "-workers", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "pipeline:") {
		t.Fatalf("missing pipeline header:\n%s", got)
	}
	if !strings.Contains(got, "h=1") || !strings.Contains(got, "h=3") {
		t.Fatalf("missing horizon columns:\n%s", got)
	}
	for _, model := range []string{"Average", "Persist"} {
		line := ""
		for _, l := range strings.Split(got, "\n") {
			if strings.HasPrefix(l, model) {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("no row for %s:\n%s", model, got)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("row %q should have model + 2 lift columns", line)
		}
		for _, f := range fields[1:] {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				t.Fatalf("unparseable lift %q in row %q", f, line)
			}
		}
	}
}

// TestRunDeterministicAcrossWorkers runs the same tiny sweep at two worker
// counts: the printed tables must match exactly.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	table := func(workers string) string {
		var buf strings.Builder
		err := run([]string{
			"-sectors", "150", "-weeks", "8", "-seed", "2",
			"-t", "30", "-h", "1", "-w", "7",
			"-models", "Average,Persist,Random", "-workers", workers,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := table("1"), table("4"); a != b {
		t.Fatalf("output differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}

// TestRunCSVStream: -csv streams every sweep record to the file alongside
// the printed lift table.
func TestRunCSVStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.csv")
	var buf strings.Builder
	err := run([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-t", "30,32", "-h", "1,3", "-w", "7",
		"-models", "Average,Persist", "-workers", "2",
		"-csv", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "streamed 8 records to ") {
		t.Fatalf("missing streamed summary:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// 2 ts x 2 hs x 1 w x 2 models, plus the header.
	if len(lines) != 9 {
		t.Fatalf("csv has %d lines, want 9:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "model,target,t,h,w,") {
		t.Fatalf("bad header %q", lines[0])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-t", "not-a-number"}, &strings.Builder{}); err == nil {
		t.Fatal("bad -t accepted")
	}
	if err := run([]string{"-target", "bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("bad -target accepted")
	}
}
