// Command hotforecast trains and evaluates hot-spot forecasting models on a
// dataset, printing per-model average precision and lift for the requested
// grid (Sec. V protocol).
//
// Usage:
//
//	hotforecast -sectors 600 -t 60,70 -h 1,7,14 -w 7 -target hot
//	hotforecast -in network.gob -models Average,RF-F1 -target become
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/mathx"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotforecast: ")
	var (
		in      = flag.String("in", "", "dataset path (empty = generate)")
		sectors = flag.Int("sectors", 600, "sectors when generating")
		seed    = flag.Uint64("seed", 1, "seed")
		tsFlag  = flag.String("t", "60,70,80", "comma-separated forecast days")
		hsFlag  = flag.String("h", "1,7,14", "comma-separated horizons")
		wFlag   = flag.Int("w", 7, "past-window length in days")
		target  = flag.String("target", "hot", "target: hot | become")
		models  = flag.String("models", "", "comma-separated model subset (default: all 8)")
		trees   = flag.Int("trees", 24, "random-forest size")
	)
	flag.Parse()

	ts, err := parseInts(*tsFlag)
	if err != nil {
		log.Fatalf("bad -t: %v", err)
	}
	hs, err := parseInts(*hsFlag)
	if err != nil {
		log.Fatalf("bad -h: %v", err)
	}
	tgt := forecast.BeHot
	if *target == "become" {
		tgt = forecast.BecomeHot
	} else if *target != "hot" {
		log.Fatalf("unknown target %q", *target)
	}

	p, err := buildPipeline(*in, *sectors, *seed, *trees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d sectors, %d days (%d discarded)\n", p.Sectors(), p.Days(), p.Discarded)

	modelSet := forecast.AllModels()
	if *models != "" {
		modelSet = nil
		for _, name := range strings.Split(*models, ",") {
			m, err := core.NewModel(core.ModelKind(strings.TrimSpace(name)))
			if err != nil {
				log.Fatal(err)
			}
			modelSet = append(modelSet, m)
		}
	}

	res, err := forecast.Sweep(p.Ctx, forecast.SweepConfig{
		Models: modelSet, Target: tgt, Ts: ts, Hs: hs, Ws: []int{*wFlag},
		RandomRepeats: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate mean lift per (model, h) over t.
	lifts := res.LiftsByModelH(*wFlag)
	var names []string
	for name := range lifts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n%s forecast, w=%d, lift over random (mean over t=%v):\n", tgt, *wFlag, ts)
	fmt.Printf("%-10s", "model")
	for _, h := range hs {
		fmt.Printf("   h=%-4d", h)
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("%-10s", name)
		for _, h := range hs {
			fmt.Printf("   %-6.2f", mathx.Mean(lifts[name][h]))
		}
		fmt.Println()
	}
}

func buildPipeline(path string, sectors int, seed uint64, trees int) (*core.Pipeline, error) {
	cfg := core.Config{Seed: seed, Sectors: sectors, ForestTrees: trees, TrainDays: 4}
	if path == "" {
		return core.NewPipeline(cfg)
	}
	ds, err := simnet.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return core.FromDataset(ds, cfg)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
