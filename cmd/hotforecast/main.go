// Command hotforecast trains and evaluates hot-spot forecasting models on a
// dataset, printing per-model average precision and lift for the requested
// grid (Sec. V protocol).
//
// Usage:
//
//	hotforecast -sectors 600 -t 60,70 -h 1,7,14 -w 7 -target hot
//	hotforecast -in network.gob -models Average,RF-F1 -target become
//	hotforecast -workers 8      # bound the parallel sweep engine
//	hotforecast -cache-mb 512   # feature-matrix cache budget (0 disables)
//	hotforecast -split-algo hist # histogram-binned tree training (exact | hist | auto)
//	hotforecast -csv sweep.csv  # stream records to CSV as they complete
//
// Train-once workflow (see cmd/hotserve for the serving side):
//
//	hotforecast -models RF-F1 -t 60 -h 7 -w 7 -model-out rf.hotm   # fit + save
//	hotforecast -model-in rf.hotm -t 62,64                          # load + predict
//
// -model-out requires exactly one model, one t and one h; -model-in skips
// training entirely and predicts from the artifact at each requested t
// (evaluating against labels when day t+h is inside the grid). Both modes
// need the pipeline built from the same dataset the artifact was trained
// on (same -in file, or same -sectors/-weeks/-seed).
//
// Registry workflow (versioned publishing; see internal/registry):
//
//	hotforecast -models RF-F1 -t 60 -h 7 -w 7 -registry ./models  # fit + publish
//	hotforecast -registry ./models -prune 3                        # keep 3 newest/task
//	hotforecast -registry ./models -prune-max-age 720h             # drop versions >30d old
//	hotforecast -registry ./models -prune-max-bytes 104857600      # fit a 100 MiB budget
//	hotforecast -registry ./models -verify                         # fsck: checksum every artifact
//
// -registry with a model selection trains like -model-out but publishes
// the artifact as the new latest version of its task, which a running
// hotserve -registry picks up on its next reload. -registry with only
// prune criteria garbage-collects: -prune keeps the newest N per task,
// -prune-max-age drops stale versions, -prune-max-bytes evicts oldest
// versions until the registry fits the byte budget; criteria compose, and
// each task's latest version is never dropped.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forecast"
	"repro/internal/mathx"
	"repro/internal/mltree"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotforecast: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point: it builds the pipeline, sweeps the
// requested grid on the parallel engine and prints the lift table on out.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("hotforecast", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "dataset path (empty = generate)")
		sectors  = fs.Int("sectors", 600, "sectors when generating")
		weeks    = fs.Int("weeks", 0, "weeks when generating (0 = the paper's 18)")
		seed     = fs.Uint64("seed", 1, "seed")
		tsFlag   = fs.String("t", "60,70,80", "comma-separated forecast days")
		hsFlag   = fs.String("h", "1,7,14", "comma-separated horizons")
		wFlag    = fs.Int("w", 7, "past-window length in days")
		target   = fs.String("target", "hot", "target: hot | become")
		models   = fs.String("models", "", "comma-separated model subset (default: all 8)")
		trees    = fs.Int("trees", 24, "random-forest size")
		workers  = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		cacheMB  = fs.Int("cache-mb", 256, "feature-matrix cache budget in MiB (0 disables caching)")
		split    = fs.String("split-algo", "auto", "tree-training split search: exact | hist | auto")
		csvPath  = fs.String("csv", "", "also stream sweep records to this CSV file as they complete")
		modelOut = fs.String("model-out", "", "train the single selected model at the single (t, h, w) and write the artifact here (skips the sweep)")
		modelIn  = fs.String("model-in", "", "load a trained artifact and predict at each -t instead of training (skips the sweep)")
		regDir   = fs.String("registry", "", "model-registry directory: train like -model-out but publish as a new version (or just prune)")
		prune    = fs.Int("prune", 0, "with -registry: keep only the newest N versions of every task")
		pruneAge = fs.Duration("prune-max-age", 0, "with -registry: also drop versions published longer than this ago (latest per task always kept)")
		pruneMax = fs.Int64("prune-max-bytes", 0, "with -registry: also drop oldest versions until total artifact bytes fit this budget (latest per task always kept)")
		verify   = fs.Bool("verify", false, "with -registry: fsck every published artifact against its manifest checksum and exit non-zero if any version is corrupt")
		metrics  = fs.String("metrics", "", "write the process metrics exposition to this path at exit (\"-\" = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics != "" {
		defer func() {
			if derr := obs.Default().Dump(*metrics); derr != nil && err == nil {
				err = fmt.Errorf("metrics dump: %w", derr)
			}
		}()
	}

	ts, err := parseInts(*tsFlag)
	if err != nil {
		return fmt.Errorf("bad -t: %w", err)
	}
	hs, err := parseInts(*hsFlag)
	if err != nil {
		return fmt.Errorf("bad -h: %w", err)
	}
	tgt := forecast.BeHot
	if *target == "become" {
		tgt = forecast.BecomeHot
	} else if *target != "hot" {
		return fmt.Errorf("unknown target %q", *target)
	}

	if *modelOut != "" && *modelIn != "" {
		return fmt.Errorf("-model-out and -model-in are mutually exclusive")
	}
	if *regDir != "" && (*modelOut != "" || *modelIn != "") {
		return fmt.Errorf("-registry is mutually exclusive with -model-out/-model-in")
	}
	pruneOpts := registry.PruneOpts{KeepN: *prune, MaxAge: *pruneAge, MaxTotalBytes: *pruneMax}
	wantPrune := pruneOpts != (registry.PruneOpts{})
	if wantPrune && *regDir == "" {
		return fmt.Errorf("-prune/-prune-max-age/-prune-max-bytes need -registry")
	}
	if *prune < 0 || *pruneAge < 0 || *pruneMax < 0 {
		return fmt.Errorf("prune criteria must be non-negative")
	}
	if *verify && (*regDir == "" || *models != "") {
		return fmt.Errorf("-verify is a standalone registry check: pass -registry and no -models")
	}

	// Standalone verify/prune touch only the registry — no pipeline needed.
	if *regDir != "" && *models == "" {
		if !wantPrune && !*verify {
			return fmt.Errorf("-registry without -models publishes nothing: pass -models to train+publish, -verify to fsck, or a prune criterion to prune")
		}
		reg, err := registry.Open(*regDir, -1)
		if err != nil {
			return err
		}
		if *verify {
			if err := verifyRegistry(reg, out); err != nil {
				return err
			}
		}
		if wantPrune {
			dropped, err := reg.PruneWith(pruneOpts)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "pruned %d version(s) from %s (%s)\n",
				len(dropped), *regDir, describePrune(pruneOpts))
		}
		return nil
	}

	splitAlgo, err := mltree.ParseSplitAlgo(*split)
	if err != nil {
		return fmt.Errorf("bad -split-algo: %w", err)
	}

	p, err := buildPipeline(*in, *sectors, *weeks, *seed, *trees, *cacheMB, splitAlgo)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pipeline: %d sectors, %d days (%d discarded)\n", p.Sectors(), p.Days(), p.Discarded)

	if *modelIn != "" {
		return predictFromArtifact(p, *modelIn, ts, out)
	}

	modelSet := forecast.AllModels()
	if *models != "" {
		modelSet = nil
		for _, name := range strings.Split(*models, ",") {
			m, err := core.NewModel(core.ModelKind(strings.TrimSpace(name)))
			if err != nil {
				return err
			}
			modelSet = append(modelSet, m)
		}
	}

	if *modelOut != "" {
		if len(modelSet) != 1 || len(ts) != 1 || len(hs) != 1 {
			return fmt.Errorf("-model-out trains one artifact: pass exactly one -models entry, one -t and one -h (got %d/%d/%d)",
				len(modelSet), len(ts), len(hs))
		}
		return trainToArtifact(p, modelSet[0], tgt, ts[0], hs[0], *wFlag, *modelOut, out)
	}

	if *regDir != "" {
		if len(modelSet) != 1 || len(ts) != 1 || len(hs) != 1 {
			return fmt.Errorf("-registry publishes one artifact: pass exactly one -models entry, one -t and one -h (got %d/%d/%d)",
				len(modelSet), len(ts), len(hs))
		}
		return trainToRegistry(p, modelSet[0], tgt, ts[0], hs[0], *wFlag, *regDir, pruneOpts, out)
	}

	if len(ts)*len(hs) > 1 {
		// Multi-point grids saturate the sweep pool; serialise each forest
		// fit so -workers actually bounds the total parallelism.
		p.Ctx.FitWorkers = 1
	}

	// Stream the sweep: records are collected for the lift table and, when
	// -csv is set, written to disk the moment their grid point completes.
	var emitCSV func(forecast.Record) error
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cw := csv.NewWriter(f)
		if err := cw.Write(forecast.CSVHeader()); err != nil {
			return err
		}
		emitCSV = func(rec forecast.Record) error {
			if err := cw.Write(rec.CSVRow()); err != nil {
				return err
			}
			cw.Flush()
			return cw.Error()
		}
	}
	res := &forecast.Result{}
	err = forecast.SweepStream(p.Ctx, forecast.SweepConfig{
		Models: modelSet, Target: tgt, Ts: ts, Hs: hs, Ws: []int{*wFlag},
		RandomRepeats: 5,
		Workers:       *workers,
	}, func(rec forecast.Record) error {
		res.Records = append(res.Records, rec)
		if emitCSV != nil {
			return emitCSV(rec)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if *csvPath != "" {
		fmt.Fprintf(out, "streamed %d records to %s\n", len(res.Records), *csvPath)
	}

	// Aggregate mean lift per (model, h) over t.
	lifts := res.LiftsByModelH(*wFlag)
	var names []string
	for name := range lifts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "\n%s forecast, w=%d, lift over random (mean over t=%v):\n", tgt, *wFlag, ts)
	fmt.Fprintf(out, "%-10s", "model")
	for _, h := range hs {
		fmt.Fprintf(out, "   h=%-4d", h)
	}
	fmt.Fprintln(out)
	for _, name := range names {
		fmt.Fprintf(out, "%-10s", name)
		for _, h := range hs {
			fmt.Fprintf(out, "   %-6.2f", mathx.Mean(lifts[name][h]))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// trainToArtifact is the -model-out mode: fit one model at one task and
// write the versioned artifact to disk.
func trainToArtifact(p *core.Pipeline, m forecast.Model, tgt forecast.Target, t, h, w int, path string, out io.Writer) error {
	start := time.Now()
	tr, err := m.Fit(p.Ctx, tgt, t, h, w)
	if err != nil {
		return fmt.Errorf("training %s: %w", m.Name(), err)
	}
	if err := forecast.SaveModel(path, tr); err != nil {
		return err
	}
	data, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trained %s (target %s, t=%d h=%d w=%d, cutoff day %d) in %v\n",
		tr.ModelName(), tr.Target(), t, h, w, tr.Cutoff(), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "wrote %s (%d bytes); serve it with: hotserve -models %s\n", path, data.Size(), path)
	return nil
}

// verifyRegistry is the -verify fsck mode: checksum every published
// artifact against its manifest entry, report each version's verdict, and
// fail (non-zero exit) if anything is corrupt — the offline counterpart of
// the serving layer's quarantine.
func verifyRegistry(reg *registry.Registry, out io.Writer) error {
	results := reg.VerifyAll()
	bad := 0
	for _, res := range results {
		if res.Err != nil {
			bad++
			fmt.Fprintf(out, "CORRUPT version %d (%s, %s): %v\n",
				res.Version.ID, res.Key, res.Version.File, res.Err)
		} else {
			fmt.Fprintf(out, "ok      version %d (%s, %s)\n",
				res.Version.ID, res.Key, res.Version.File)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d version(s) failed verification", bad, len(results))
	}
	fmt.Fprintf(out, "verified %d version(s): all clean\n", len(results))
	return nil
}

// trainToRegistry is the -registry publish mode: fit one model at one task
// and publish it as the new latest version, optionally pruning old
// versions afterwards.
func trainToRegistry(p *core.Pipeline, m forecast.Model, tgt forecast.Target, t, h, w int, dir string, prune registry.PruneOpts, out io.Writer) error {
	reg, err := registry.Open(dir, -1)
	if err != nil {
		return err
	}
	p.AttachRegistry(reg)
	start := time.Now()
	tr, err := m.Fit(p.Ctx, tgt, t, h, w)
	if err != nil {
		return fmt.Errorf("training %s: %w", m.Name(), err)
	}
	v, err := p.Publish(tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trained %s (target %s, t=%d h=%d w=%d, cutoff day %d) in %v\n",
		tr.ModelName(), tr.Target(), t, h, w, tr.Cutoff(), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "published version %d (%s, %d bytes) to %s; serve it with: hotserve -registry %s\n",
		v.ID, v.File, v.SizeBytes, dir, dir)
	if prune != (registry.PruneOpts{}) {
		dropped, err := reg.PruneWith(prune)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "pruned %d version(s) (%s)\n", len(dropped), describePrune(prune))
	}
	return nil
}

// describePrune renders the active GC criteria for operator output.
func describePrune(o registry.PruneOpts) string {
	var parts []string
	if o.KeepN > 0 {
		parts = append(parts, fmt.Sprintf("keeping the newest %d per task", o.KeepN))
	}
	if o.MaxAge > 0 {
		parts = append(parts, fmt.Sprintf("max age %v", o.MaxAge))
	}
	if o.MaxTotalBytes > 0 {
		parts = append(parts, fmt.Sprintf("byte budget %d", o.MaxTotalBytes))
	}
	return strings.Join(parts, ", ")
}

// predictFromArtifact is the -model-in mode: score each requested t from
// the loaded artifact, evaluating against labels where the forecast day is
// inside the grid.
func predictFromArtifact(p *core.Pipeline, path string, ts []int, out io.Writer) error {
	tr, err := forecast.LoadModelFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %s artifact: target %s, h=%d w=%d, trained at cutoff day %d\n",
		tr.ModelName(), tr.Target(), tr.Horizon(), tr.Window(), tr.Cutoff())
	for _, t := range ts {
		scores, err := p.Predict(tr, t, tr.Window())
		if err != nil {
			return fmt.Errorf("predicting at t=%d: %w", t, err)
		}
		top := core.TopK(scores, 5)
		fmt.Fprintf(out, "t=%d forecast day %d top sectors:", t, t+tr.Horizon())
		for _, i := range top {
			fmt.Fprintf(out, " %d:%.3f", i, scores[i])
		}
		if day := t + tr.Horizon(); day < p.Days() {
			labels := p.Ctx.Labels(tr.Target()).Col(day)
			ap := eval.AveragePrecision(scores, labels)
			fmt.Fprintf(out, "   psi=%.3f lift=%.2f", ap, eval.Lift(ap, eval.Prevalence(labels)))
		} else {
			fmt.Fprintf(out, "   (day %d beyond grid: no labels to evaluate)", day)
		}
		fmt.Fprintln(out)
	}
	return nil
}

func buildPipeline(path string, sectors, weeks int, seed uint64, trees, cacheMB int, split mltree.SplitAlgo) (*core.Pipeline, error) {
	cfg := core.Config{Seed: seed, Sectors: sectors, Weeks: weeks, ForestTrees: trees, TrainDays: 4,
		CacheBytes: forecast.CacheBytesMB(cacheMB), SplitAlgo: split}
	if path == "" {
		return core.NewPipeline(cfg)
	}
	ds, err := simnet.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return core.FromDataset(ds, cfg)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
