// Command hotforecast trains and evaluates hot-spot forecasting models on a
// dataset, printing per-model average precision and lift for the requested
// grid (Sec. V protocol).
//
// Usage:
//
//	hotforecast -sectors 600 -t 60,70 -h 1,7,14 -w 7 -target hot
//	hotforecast -in network.gob -models Average,RF-F1 -target become
//	hotforecast -workers 8      # bound the parallel sweep engine
//	hotforecast -cache-mb 512   # feature-matrix cache budget (0 disables)
//	hotforecast -csv sweep.csv  # stream records to CSV as they complete
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/mathx"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotforecast: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point: it builds the pipeline, sweeps the
// requested grid on the parallel engine and prints the lift table on out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotforecast", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "dataset path (empty = generate)")
		sectors = fs.Int("sectors", 600, "sectors when generating")
		weeks   = fs.Int("weeks", 0, "weeks when generating (0 = the paper's 18)")
		seed    = fs.Uint64("seed", 1, "seed")
		tsFlag  = fs.String("t", "60,70,80", "comma-separated forecast days")
		hsFlag  = fs.String("h", "1,7,14", "comma-separated horizons")
		wFlag   = fs.Int("w", 7, "past-window length in days")
		target  = fs.String("target", "hot", "target: hot | become")
		models  = fs.String("models", "", "comma-separated model subset (default: all 8)")
		trees   = fs.Int("trees", 24, "random-forest size")
		workers = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		cacheMB = fs.Int("cache-mb", 256, "feature-matrix cache budget in MiB (0 disables caching)")
		csvPath = fs.String("csv", "", "also stream sweep records to this CSV file as they complete")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ts, err := parseInts(*tsFlag)
	if err != nil {
		return fmt.Errorf("bad -t: %w", err)
	}
	hs, err := parseInts(*hsFlag)
	if err != nil {
		return fmt.Errorf("bad -h: %w", err)
	}
	tgt := forecast.BeHot
	if *target == "become" {
		tgt = forecast.BecomeHot
	} else if *target != "hot" {
		return fmt.Errorf("unknown target %q", *target)
	}

	p, err := buildPipeline(*in, *sectors, *weeks, *seed, *trees, *cacheMB)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pipeline: %d sectors, %d days (%d discarded)\n", p.Sectors(), p.Days(), p.Discarded)

	modelSet := forecast.AllModels()
	if *models != "" {
		modelSet = nil
		for _, name := range strings.Split(*models, ",") {
			m, err := core.NewModel(core.ModelKind(strings.TrimSpace(name)))
			if err != nil {
				return err
			}
			modelSet = append(modelSet, m)
		}
	}

	if len(ts)*len(hs) > 1 {
		// Multi-point grids saturate the sweep pool; serialise each forest
		// fit so -workers actually bounds the total parallelism.
		p.Ctx.FitWorkers = 1
	}

	// Stream the sweep: records are collected for the lift table and, when
	// -csv is set, written to disk the moment their grid point completes.
	var emitCSV func(forecast.Record) error
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cw := csv.NewWriter(f)
		if err := cw.Write(forecast.CSVHeader()); err != nil {
			return err
		}
		emitCSV = func(rec forecast.Record) error {
			if err := cw.Write(rec.CSVRow()); err != nil {
				return err
			}
			cw.Flush()
			return cw.Error()
		}
	}
	res := &forecast.Result{}
	err = forecast.SweepStream(p.Ctx, forecast.SweepConfig{
		Models: modelSet, Target: tgt, Ts: ts, Hs: hs, Ws: []int{*wFlag},
		RandomRepeats: 5,
		Workers:       *workers,
	}, func(rec forecast.Record) error {
		res.Records = append(res.Records, rec)
		if emitCSV != nil {
			return emitCSV(rec)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if *csvPath != "" {
		fmt.Fprintf(out, "streamed %d records to %s\n", len(res.Records), *csvPath)
	}

	// Aggregate mean lift per (model, h) over t.
	lifts := res.LiftsByModelH(*wFlag)
	var names []string
	for name := range lifts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "\n%s forecast, w=%d, lift over random (mean over t=%v):\n", tgt, *wFlag, ts)
	fmt.Fprintf(out, "%-10s", "model")
	for _, h := range hs {
		fmt.Fprintf(out, "   h=%-4d", h)
	}
	fmt.Fprintln(out)
	for _, name := range names {
		fmt.Fprintf(out, "%-10s", name)
		for _, h := range hs {
			fmt.Fprintf(out, "   %-6.2f", mathx.Mean(lifts[name][h]))
		}
		fmt.Fprintln(out)
	}
	return nil
}

func buildPipeline(path string, sectors, weeks int, seed uint64, trees, cacheMB int) (*core.Pipeline, error) {
	cfg := core.Config{Seed: seed, Sectors: sectors, Weeks: weeks, ForestTrees: trees, TrainDays: 4,
		CacheBytes: forecast.CacheBytesMB(cacheMB)}
	if path == "" {
		return core.NewPipeline(cfg)
	}
	ds, err := simnet.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return core.FromDataset(ds, cfg)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
