package main

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/obs"
)

// scrape fetches and parses GET /metrics.
func scrape(t testing.TB, srv *server) obs.Scrape {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	sc, err := obs.ParseText(rec.Body.String())
	if err != nil {
		t.Fatalf("/metrics did not parse: %v", err)
	}
	return sc
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t, 8)
	route := obs.Label{Key: "route", Value: "/forecast"}

	before := scrape(t, srv)
	if code, _ := get(t, srv, "/forecast?model=Average&t=30&k=5"); code != 200 {
		t.Fatalf("forecast status %d", code)
	}
	if code, _ := get(t, srv, "/forecast?model=NoSuchModel"); code != 404 {
		t.Fatalf("miss status %d", code)
	}
	after := scrape(t, srv)

	if got := after.Counter("hotserve_requests_total", route) - before.Counter("hotserve_requests_total", route); got != 2 {
		t.Errorf("request counter delta = %d, want 2", got)
	}
	if got := after.Counter("hotserve_forecasts_total") - before.Counter("hotserve_forecasts_total"); got != 1 {
		t.Errorf("forecast counter delta = %d, want 1", got)
	}
	if got := after.Counter("hotserve_errors_total", route) - before.Counter("hotserve_errors_total", route); got != 1 {
		t.Errorf("error counter delta = %d, want 1", got)
	}

	// The end-to-end and stage histograms recorded the successful request.
	lat, ok := after.Histogram("hotserve_request_seconds", route)
	if !ok || lat.Count == 0 {
		t.Errorf("request latency histogram empty (present=%v)", ok)
	}
	for _, stage := range []string{"admission", "lookup", "predict", "rank", "encode"} {
		h, ok := after.Histogram("hotserve_stage_seconds", obs.Label{Key: "stage", Value: stage})
		if !ok || h.Count == 0 {
			t.Errorf("stage %q histogram empty (present=%v)", stage, ok)
		}
	}

	// Inventory gauges reflect the active set (two artifacts, one flat).
	if v, ok := after.Value("hotserve_models"); !ok || v != 2 {
		t.Errorf("hotserve_models = %v (%v), want 2", v, ok)
	}
	if v, ok := after.Value("hotserve_flattened_models"); !ok || v != 1 {
		t.Errorf("hotserve_flattened_models = %v (%v), want 1", v, ok)
	}

	// Library-layer series ride the same scrape.
	if _, ok := after.Value("bytelru_hits_total", obs.Label{Key: "cache", Value: "features"}); !ok {
		t.Error("feature-cache series missing from scrape")
	}
	if after.Counter("forecast_batch_predicts_total") == 0 {
		t.Error("forecast_batch_predicts_total did not advance")
	}
}

// Two servers in one process must not share request counters — the
// server-scoped registry exists exactly for this.
func TestMetricsScopedPerServer(t *testing.T) {
	a, _ := testServer(t, 8)
	b, _ := testServer(t, 8)
	route := obs.Label{Key: "route", Value: "/forecast"}
	beforeB := scrape(t, b).Counter("hotserve_requests_total", route)
	get(t, a, "/forecast?model=Average&t=30&k=5")
	if got := scrape(t, b).Counter("hotserve_requests_total", route); got != beforeB {
		t.Fatalf("server B saw server A's requests: %d -> %d", beforeB, got)
	}
}

func TestHealthzReadsObsCounters(t *testing.T) {
	srv, p, pub := registryServer(t)
	tr2, err := p.Train(core.Average, forecast.BeHot, 31, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(tr2); err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, srv, "/reload", ""); code != 200 || body["reloaded"] != true {
		t.Fatalf("reload: %d %v", code, body)
	}
	_, body := get(t, srv, "/healthz")
	if got := body["reloads"]; got != float64(1) {
		t.Fatalf("healthz reloads = %v, want 1", got)
	}
	if got := scrape(t, srv).Counter("hotserve_reloads_total"); got != 1 {
		t.Fatalf("hotserve_reloads_total = %d, want 1", got)
	}
}

func TestShedCountedAndLogged(t *testing.T) {
	srv, _ := testServer(t, 1)
	var buf bytes.Buffer
	srv.accessLog = true
	srv.accessOut = &buf

	release := make(chan struct{})
	entered := make(chan struct{})
	srv.testHookForecast = func() {
		close(entered)
		<-release
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/forecast?model=Average&t=30&k=5", nil))
	}()
	<-entered
	srv.testHookForecast = nil

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/forecast?model=Average&t=30&k=5", nil))
	if rec.Code != 503 {
		t.Fatalf("expected shed 503, got %d", rec.Code)
	}
	close(release)
	<-done

	if got := scrape(t, srv).Counter("hotserve_sheds_total", obs.Label{Key: "route", Value: "/forecast"}); got != 1 {
		t.Fatalf("hotserve_sheds_total = %d, want 1", got)
	}
	logged := buf.String()
	shedLine := regexp.MustCompile(`access id=\d+ method=GET route=/forecast status=503 dur_ms=\d+\.\d+ shed=capacity`)
	if !shedLine.MatchString(logged) {
		t.Fatalf("shed not logged with reason:\n%s", logged)
	}
	okLine := regexp.MustCompile(`access id=\d+ method=GET route=/forecast status=200 dur_ms=\d+\.\d+ shed=-`)
	if !okLine.MatchString(logged) {
		t.Fatalf("successful request not logged:\n%s", logged)
	}
}

func TestAccessLogOffByDefault(t *testing.T) {
	srv, _ := testServer(t, 8)
	var buf bytes.Buffer
	srv.accessOut = &buf
	get(t, srv, "/forecast?model=Average&t=30&k=5")
	if buf.Len() != 0 {
		t.Fatalf("access log written without -access-log:\n%s", buf.String())
	}
}

func TestPprofBehindFlag(t *testing.T) {
	srv, _ := testServer(t, 8)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Fatalf("pprof exposed without -pprof: %d", rec.Code)
	}
	srv.enablePprof()
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index not served after enablePprof: %d", rec.Code)
	}
}
