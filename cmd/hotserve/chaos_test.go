package main

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/forecast"
	"repro/internal/registry"
)

// chaosServer is registryServer with the reader's decoded-artifact cache
// disabled, so every reload re-reads artifact bytes from disk and on-disk
// corruption is actually observed (a cache hit would serve the good decode
// from memory and mask the fault).
func chaosServer(t *testing.T) (*server, *core.Pipeline, *registry.Registry) {
	t.Helper()
	p := testPipeline(t)
	dir := t.TempDir()
	pub, err := registry.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Train(core.Average, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(tr); err != nil {
		t.Fatal(err)
	}
	srv := newServer(p, 8)
	reg, err := registry.Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.attachRegistry(reg); err != nil {
		t.Fatal(err)
	}
	return srv, p, pub
}

// TestChaosPublishCorruptReloadServe is the end-to-end fault loop: publish
// a fresh version, corrupt it on disk (bit rot in the payload, a flipped
// header, a torn tail, a zeroed file), reload, and keep serving. Every
// round must answer every forecast with 200 from a version that verifies,
// quarantine the corrupted version, and report the degradation on /healthz
// while keeping status "ok" (the process is alive — discovery and load
// balancers must not eject it). A hammer goroutine issues forecasts
// throughout, so the swaps themselves are covered: zero non-200 responses
// end to end.
func TestChaosPublishCorruptReloadServe(t *testing.T) {
	srv, p, pub := chaosServer(t)
	dir := pub.Dir()

	var non200, served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("GET", "/forecast?model=Average&t=35&k=5", nil))
			served.Add(1)
			if rec.Code != 200 {
				non200.Add(1)
			}
		}
	}()
	// Hold the fault loop until the hammer has a request through: the
	// whole test can finish in well under a second on a fast box, and the
	// point is overlap between the hammer and the swaps.
	for served.Load() == 0 {
		runtime.Gosched()
	}

	corruptions := []struct {
		name    string
		corrupt func(path string) error
	}{
		{"payload-bitflip", func(path string) error { return faultfs.BitFlipFile(path, -3, 4) }},
		{"header-bitflip", func(path string) error { return faultfs.BitFlipFile(path, 4, 0) }},
		{"torn-tail", func(path string) error { return faultfs.TruncateFile(path, 0.5) }},
		{"zeroed", func(path string) error { return faultfs.TruncateFile(path, 0) }},
	}
	goodID := 0
	if v, ok := srv.reg.Latest(registry.TaskKey{Model: "Average", Target: int(forecast.BeHot), H: 3, W: 7}); ok {
		goodID = v.ID
	}
	for i, tc := range corruptions {
		tr, err := p.Train(core.Average, forecast.BeHot, 31+i, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		v, err := pub.Publish(tr)
		if err != nil {
			t.Fatalf("%s: publish: %v", tc.name, err)
		}
		if err := tc.corrupt(filepath.Join(dir, v.File)); err != nil {
			t.Fatalf("%s: corrupt: %v", tc.name, err)
		}
		code, body := post(t, srv, "/reload", "")
		if code != 200 {
			t.Fatalf("%s: reload = %d %v", tc.name, code, body)
		}
		code, fc := get(t, srv, "/forecast?model=Average&t=35&k=5")
		if code != 200 {
			t.Fatalf("%s: forecast after corrupt reload = %d %v", tc.name, code, fc)
		}
		code, hz := get(t, srv, "/healthz")
		if code != 200 || hz["status"] != "ok" {
			t.Fatalf("%s: healthz = %d %v", tc.name, code, hz["status"])
		}
		if hz["degraded"] != true {
			t.Fatalf("%s: corrupted latest not reported degraded: %v", tc.name, hz)
		}
		quar, _ := hz["quarantined_versions"].(map[string]any)
		if _, ok := quar[fmt.Sprint(v.ID)]; !ok {
			t.Fatalf("%s: version %d not in quarantine report %v", tc.name, v.ID, quar)
		}
		// The serving set fell back to the good version, not the corrupt one.
		set := srv.active.Load()
		if len(set.models) != 1 || set.models[0].version != goodID {
			t.Fatalf("%s: serving version %d, want fallback to %d", tc.name, set.models[0].version, goodID)
		}
	}

	// Final round: every version of the task is corrupt — the previous
	// generation's decoded artifact is carried forward and the task keeps
	// serving from memory.
	for _, task := range pub.List() {
		for _, v := range task.Versions {
			if v.ID == goodID {
				if err := faultfs.BitFlipFile(filepath.Join(dir, v.File), -1, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	tr, err := p.Train(core.Average, forecast.BeHot, 36, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pub.Publish(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.TruncateFile(filepath.Join(dir, v.File), 0.3); err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, srv, "/reload", ""); code != 200 {
		t.Fatalf("all-corrupt reload = %d %v", code, body)
	}
	if code, _ := get(t, srv, "/forecast?model=Average&t=35&k=5"); code != 200 {
		t.Fatalf("forecast with every version corrupt = %d", code)
	}
	_, hz := get(t, srv, "/healthz")
	degraded, _ := hz["degraded_tasks"].([]any)
	if len(degraded) != 1 {
		t.Fatalf("degraded_tasks = %v, want the carried task", hz["degraded_tasks"])
	}
	d, _ := degraded[0].(map[string]any)
	if int(d["carried_version"].(float64)) != goodID {
		t.Fatalf("carried_version = %v, want %d", d["carried_version"], goodID)
	}

	close(stop)
	wg.Wait()
	if non200.Load() != 0 {
		t.Fatalf("%d of %d hammered forecasts answered non-200", non200.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("hammer goroutine never got a request through")
	}
}
