// Command hotserve is the inference half of the train-once workflow: it
// loads trained-model artifacts — from explicit .hotm files or from a
// model registry (internal/registry) — rebuilds the serving context from
// the same dataset the models were trained on (enforced by the artifacts'
// dataset fingerprints), and serves per-sector hot-spot forecasts over
// HTTP. Nothing is fitted at serve time — requests only extract the
// feature window ending at the requested day and run the preloaded
// artifact, so latency is prediction-only.
//
// Registry workflow (train → publish → serve → reload):
//
//	hotforecast -sectors 600 -seed 2 -models RF-F1 -t 60 -h 7 -w 7 -registry ./models
//	hotserve    -sectors 600 -seed 2 -registry ./models -addr :8080
//	...retrain and publish a fresher version, then either wait for the
//	manifest watcher (-watch) or force the swap:
//	curl -X POST 'http://localhost:8080/reload'
//
// The active artifact set lives behind an atomic pointer: a reload builds
// the new set, swaps the pointer, and in-flight requests finish on the
// snapshot they started with — zero dropped requests, zero torn reads.
//
// Endpoints:
//
//	GET  /healthz         liveness + the active artifact inventory with
//	                      registry version IDs
//	GET  /forecast        top-k sector ranking; params: model, target
//	                      (hot|become), h, w (artifact selectors), t
//	                      (predict day, default latest), k (default 10)
//	POST /forecast/batch  JSON {"queries": [{model, target, h, w, t, k}]}:
//	                      many rankings per round trip, fanned across
//	                      cores; results are bit-identical to the same
//	                      queries issued as single /forecast calls
//	POST /reload          re-read the registry manifest and hot-swap the
//	                      active artifact set (registry mode only)
//
// Concurrent forecast work is bounded by -max-inflight (admission control
// through internal/parallel's semaphore) with weighted charging: a
// /forecast call costs one slot, a /forecast/batch of k queries costs
// min(k, -max-inflight) slots all-or-nothing — so the bound tracks
// forecasts in flight, not requests. Excess work gets 503 rather than
// queuing without bound. SIGINT/SIGTERM
// stop the listener and drain in-flight requests for up to -drain before
// the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/registry"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotserve: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point: it builds the serving context, loads
// the artifacts, binds the socket and blocks serving HTTP until a
// termination signal drains it.
func run(args []string, out io.Writer) error {
	srv, addr, err := setup(args, out)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.serve(ctx, ln, out)
}

// setup parses flags and assembles the server without binding the socket,
// so tests can drive the handler directly.
func setup(args []string, out io.Writer) (*server, string, error) {
	fs := flag.NewFlagSet("hotserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		in       = fs.String("in", "", "dataset path (empty = generate; must match the training dataset)")
		sectors  = fs.Int("sectors", 600, "sectors when generating")
		weeks    = fs.Int("weeks", 0, "weeks when generating (0 = the paper's 18)")
		seed     = fs.Uint64("seed", 1, "seed when generating")
		models   = fs.String("models", "", "comma-separated trained-artifact paths to preload (static mode)")
		regDir   = fs.String("registry", "", "model-registry directory to serve the latest version of every task from")
		watch    = fs.Duration("watch", 5*time.Second, "registry manifest poll interval for automatic hot reload (0 disables; POST /reload always works)")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for draining in-flight requests")
		cacheMB  = fs.Int("cache-mb", 256, "feature-matrix cache budget in MiB (0 disables caching)")
		inflight = fs.Int("max-inflight", 2*runtime.GOMAXPROCS(0), "max concurrent forecast requests; excess gets 503")
		batchMax = fs.Int("batch-max", 256, "max queries per /forecast/batch request")
		pprofOn  = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the serving mux")
		accLog   = fs.Bool("access-log", false, "log one structured line per request (id, route, status, duration, shed reason) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	if (*models == "") == (*regDir == "") {
		return nil, "", fmt.Errorf("pass exactly one of -models (artifact files) or -registry (registry directory)")
	}

	cfg := core.Config{Seed: *seed, Sectors: *sectors, Weeks: *weeks,
		CacheBytes: forecast.CacheBytesMB(*cacheMB)}
	var p *core.Pipeline
	var err error
	if *in == "" {
		p, err = core.NewPipeline(cfg)
	} else {
		var ds *simnet.Dataset
		if ds, err = simnet.LoadFile(*in); err == nil {
			p, err = core.FromDataset(ds, cfg)
		}
	}
	if err != nil {
		return nil, "", err
	}

	s := newServer(p, *inflight)
	s.watch = *watch
	s.drain = *drain
	s.batchMax = *batchMax
	s.accessLog = *accLog
	if *pprofOn {
		s.enablePprof()
	}

	if *regDir != "" {
		reg, err := registry.Open(*regDir, 0)
		if err != nil {
			return nil, "", err
		}
		if err := s.attachRegistry(reg); err != nil {
			return nil, "", err
		}
		for _, sm := range s.active.Load().models {
			fmt.Fprintf(out, "loaded version %d: %s target %s, h=%d w=%d, cutoff day %d\n",
				sm.version, sm.tr.ModelName(), sm.tr.Target(), sm.tr.Horizon(), sm.tr.Window(), sm.tr.Cutoff())
		}
	} else {
		var arts []forecast.Trained
		for _, path := range strings.Split(*models, ",") {
			path = strings.TrimSpace(path)
			tr, err := p.LoadModel(path)
			if err != nil {
				return nil, "", err
			}
			arts = append(arts, tr)
			fmt.Fprintf(out, "loaded %s: %s target %s, h=%d w=%d, cutoff day %d\n",
				path, tr.ModelName(), tr.Target(), tr.Horizon(), tr.Window(), tr.Cutoff())
		}
		if err := s.setStatic(arts); err != nil {
			return nil, "", err
		}
	}

	fmt.Fprintf(out, "serving %d sectors x %d days with %d artifact(s) on %s (max %d in-flight forecasts)\n",
		p.Sectors(), p.Days(), len(s.active.Load().models), *addr, *inflight)
	return s, *addr, nil
}

// servedModel is one active artifact plus its registry version (0 in
// static -models mode).
type servedModel struct {
	tr      forecast.Trained
	version int
}

// degradedTask records one task a reload could not bring fully up to date:
// the newest loadable version failed verification (and, when a previous
// generation held a decoded artifact, that artifact was carried forward so
// the task keeps serving).
type degradedTask struct {
	Task string `json:"task"`
	// Err is the failure that degraded the task (checksum mismatch, decode
	// error, fingerprint mismatch).
	Err string `json:"error"`
	// CarriedVersion is the previous-generation version still serving the
	// task; 0 when the task has no servable artifact at all.
	CarriedVersion int `json:"carried_version,omitempty"`
}

// artifactSet is one immutable generation of the serving inventory. The
// active set is swapped wholesale behind an atomic pointer; requests
// snapshot it once and never observe a half-swapped inventory.
type artifactSet struct {
	models   []servedModel
	degraded []degradedTask // tasks serving carried-forward (or no) artifacts
	gen      uint64         // registry generation the set was loaded at
}

// checkSet rejects empty and ambiguous inventories.
func checkSet(set *artifactSet) error {
	if len(set.models) == 0 {
		return fmt.Errorf("hotserve: no artifacts to serve")
	}
	seen := map[string]bool{}
	for _, sm := range set.models {
		id := artifactID(sm.tr)
		if seen[id] {
			return fmt.Errorf("hotserve: duplicate artifact %s", id)
		}
		seen[id] = true
	}
	return nil
}

// server is the HTTP serving state: the pipeline (data + caches), the
// hot-swappable artifact set, and the admission semaphore.
type server struct {
	p        *core.Pipeline
	reg      *registry.Registry // nil in static -models mode
	active   atomic.Pointer[artifactSet]
	sem      *parallel.Semaphore
	mux      *http.ServeMux
	m        *serverMetrics
	start    time.Time
	watch    time.Duration
	drain    time.Duration
	batchMax int
	reloadMu sync.Mutex // serializes reload(): watch ticks vs POST /reload

	// accessLog enables one structured line per request on accessOut.
	accessLog bool
	accessOut io.Writer
	reqID     atomic.Uint64

	// testHookForecast, when non-nil, runs inside every admitted forecast
	// request — the shutdown-drain and hot-swap tests gate on it.
	testHookForecast func()
}

// newServer wires the routes around a pipeline. The artifact inventory is
// attached afterwards with setStatic or attachRegistry.
func newServer(p *core.Pipeline, maxInflight int) *server {
	s := &server{p: p, sem: parallel.NewSemaphore(maxInflight), mux: http.NewServeMux(),
		m: newServerMetrics(), start: time.Now(), drain: 10 * time.Second, batchMax: 256,
		accessOut: os.Stderr}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /forecast", s.handleForecast)
	s.mux.HandleFunc("POST /forecast/batch", s.handleBatch)
	s.mux.HandleFunc("POST /reload", s.handleReload)
	// One scrape covers the server-scoped series plus the process-wide
	// library series (caches, kernels, registry, pools).
	s.mux.Handle("GET /metrics", obs.Handler(obs.Default(), s.m.registry))
	s.registerInventory()
	parallel.RegisterSemaphore(s.sem)
	return s
}

// setStatic installs a fixed artifact inventory (-models mode).
func (s *server) setStatic(arts []forecast.Trained) error {
	set := &artifactSet{}
	for _, tr := range arts {
		set.models = append(set.models, servedModel{tr: tr})
	}
	if err := checkSet(set); err != nil {
		return err
	}
	s.active.Store(set)
	return nil
}

// attachRegistry switches the server to registry mode and loads the
// initial artifact set.
func (s *server) attachRegistry(reg *registry.Registry) error {
	s.p.AttachRegistry(reg)
	s.reg = reg
	set, err := s.loadRegistrySet(nil)
	if err != nil {
		return err
	}
	s.active.Store(set)
	return nil
}

// ServeHTTP implements http.Handler. With -access-log the writer is
// wrapped to capture status and shed reason, and one structured line is
// emitted per request; without it requests pass straight through with no
// wrapper allocation.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !s.accessLog {
		s.mux.ServeHTTP(w, r)
		return
	}
	rec := &accessRecorder{ResponseWriter: w, status: http.StatusOK}
	t0 := time.Now()
	s.mux.ServeHTTP(rec, r)
	s.logAccess(s.reqID.Add(1), r, rec, time.Since(t0))
}

// serve runs the HTTP server on ln until ctx is cancelled (SIGINT/SIGTERM
// in production), then stops accepting and drains in-flight requests for
// up to s.drain.
func (s *server) serve(ctx context.Context, ln net.Listener, out io.Writer) error {
	hs := &http.Server{Handler: s}
	if s.reg != nil && s.watch > 0 {
		go s.watchManifest(ctx, out)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Fprintf(out, "shutting down: draining in-flight requests (up to %v)\n", s.drain)
		dctx, cancel := context.WithTimeout(context.Background(), s.drain)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			return fmt.Errorf("hotserve: drain deadline exceeded: %w", err)
		}
		return nil
	}
}

// watchManifest polls the registry manifest and hot-swaps the artifact set
// when a publish or prune lands — the hands-off half of /reload.
func (s *server) watchManifest(ctx context.Context, out io.Writer) {
	tick := time.NewTicker(s.watch)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			swapped, n, err := s.reload()
			if err != nil {
				fmt.Fprintf(out, "watch: reload failed, keeping current artifacts: %v\n", err)
				continue
			}
			if swapped {
				fmt.Fprintf(out, "watch: hot-swapped to %d artifact(s), generation %d\n", n, s.active.Load().gen)
			}
		}
	}
}

// loadRegistrySet assembles the serving inventory from the registry: the
// latest loadable version of every published task (the registry itself
// quarantines corrupt versions and falls back to the newest that
// verifies), each checked against the serving dataset's fingerprint.
//
// prev is the currently active set (nil at initial attach). A task whose
// every version fails verification never voids the whole set: its decoded
// artifact from prev is carried forward and the task is marked degraded,
// so one corrupted publish cannot take down tasks that were serving fine —
// and a partial inventory is never swapped in over a fuller one.
func (s *server) loadRegistrySet(prev *artifactSet) (*artifactSet, error) {
	set := &artifactSet{gen: s.reg.Generation()}
	carry := map[string]servedModel{}
	if prev != nil {
		for _, sm := range prev.models {
			carry[artifactID(sm.tr)] = sm
		}
	}
	for _, task := range s.reg.List() {
		if len(task.Versions) == 0 {
			continue
		}
		tr, v, err := s.reg.LoadLatest(task.Key)
		if err == nil {
			if cerr := s.p.CheckArtifact(tr); cerr != nil {
				err = fmt.Errorf("hotserve: registry version %d: %w", v.ID, cerr)
			}
		}
		if err != nil {
			d := degradedTask{Task: task.Key.String(), Err: err.Error()}
			if sm, ok := carry[task.Key.String()]; ok {
				set.models = append(set.models, sm)
				d.CarriedVersion = sm.version
			}
			set.degraded = append(set.degraded, d)
			continue
		}
		set.models = append(set.models, servedModel{tr: tr, version: v.ID})
	}
	if err := checkSet(set); err != nil {
		return nil, err
	}
	return set, nil
}

// reload refreshes the registry manifest and, when it changed, builds and
// atomically swaps in the new artifact set. In-flight requests keep the
// snapshot they started with. Reloads are serialized so a slow reload
// racing a watch tick can never store an older set over a newer one.
// Returns whether a swap happened and the active artifact count.
func (s *server) reload() (bool, int, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if _, err := s.reg.Refresh(); err != nil {
		return false, len(s.active.Load().models), err
	}
	if s.reg.Generation() == s.active.Load().gen {
		return false, len(s.active.Load().models), nil
	}
	set, err := s.loadRegistrySet(s.active.Load())
	if err != nil {
		return false, len(s.active.Load().models), err
	}
	s.active.Store(set)
	s.m.reloads.Inc()
	return true, len(set.models), nil
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.m.reqReload.Inc()
	if s.reg == nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "not serving from a registry: restart with -registry to enable hot reload"})
		return
	}
	swapped, n, err := s.reload()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded":   swapped,
		"generation": s.active.Load().gen,
		"models":     n,
	})
}

func artifactID(tr forecast.Trained) string {
	return fmt.Sprintf("%s/%s/h=%d/w=%d", tr.ModelName(), tr.Target(), tr.Horizon(), tr.Window())
}

// modelInfo is the artifact inventory entry of /healthz.
type modelInfo struct {
	Model   string `json:"model"`
	Target  string `json:"target"`
	H       int    `json:"h"`
	W       int    `json:"w"`
	Cutoff  int    `json:"cutoff"`
	Version int    `json:"version,omitempty"`
	// Descent is the flat engine's batch kernel for this artifact: "binned"
	// (quantized uint8 codes) or "float" (raw key compares); absent for
	// baselines, which have no descent at all.
	Descent string `json:"descent,omitempty"`
	// MmapBytes is the size of the memory-mapped artifact file this model
	// serves from (zero-copy load); 0 when the model is heap-resident.
	MmapBytes int64 `json:"mmap_bytes,omitempty"`
}

// descentModel is implemented by artifacts that expose their inference
// kernel and residency (forecast's classifier artifacts).
type descentModel interface {
	DescentMode() string
	MmapBytes() int64
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.m.reqHealthz.Inc()
	set := s.active.Load()
	// One source of truth with GET /metrics: the inventory numbers come
	// from the same summarize() the hotserve_* gauges read, and the
	// counters (batch_calls, reloads) are the obs-backed series.
	sum := summarize(set)
	body := map[string]any{
		"status":    "ok",
		"mode":      "static",
		"sectors":   s.p.Sectors(),
		"days":      s.p.Days(),
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"models":    sum.infos,
		// The inference engine's vitals: how many active artifacts serve
		// through the flat batch engine (and how many of those descend on
		// quantized bin codes), their memory split between mmap-backed
		// pages and heap-resident structures, and the process-wide count
		// of batch evaluations. A zero batch_calls on a loaded server
		// means predictions are falling back to the pointer-walking path.
		// mmap_bytes is artifact data served from the page cache (mapped
		// files); heap_flat_bytes is the flat footprint of heap-resident
		// classifiers; flat_bytes is every engine's full in-memory
		// accounting regardless of residency.
		"inference": map[string]any{
			"flattened_models": sum.flattened,
			"binned_models":    sum.binned,
			"mmap_models":      sum.mapped,
			"flat_bytes":       sum.flatBytes,
			"mmap_bytes":       sum.mmapBytes,
			"heap_flat_bytes":  sum.heapBytes,
			"batch_calls":      forecast.BatchPredictCalls(),
		},
	}
	if s.reg != nil {
		body["mode"] = "registry"
		body["registry_dir"] = s.reg.Dir()
		body["generation"] = set.gen
		body["reloads"] = s.m.reloads.Value()
		// Fault posture. status stays "ok" — the process is alive and
		// serving — but degraded=true says some artifact failed verification:
		// either a version was quarantined (serving fell back to an older
		// one) or a whole task is riding on a carried-forward artifact.
		quar := s.reg.Quarantined()
		body["degraded"] = len(quar) > 0 || len(set.degraded) > 0
		body["quarantined_versions"] = quar
		if len(set.degraded) > 0 {
			body["degraded_tasks"] = set.degraded
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// forecastQuery is one normalized query: raw selector strings ("" =
// absent), shared by the URL and batch JSON forms so both endpoints
// resolve and score identically.
type forecastQuery struct {
	model, target, h, w, t, k string
}

// queryFromURL normalizes URL parameters.
func queryFromURL(q url.Values) forecastQuery {
	get := func(key string) string {
		if vs := q[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	return forecastQuery{model: get("model"), target: get("target"),
		h: get("h"), w: get("w"), t: get("t"), k: get("k")}
}

// batchQuery is one element of the /forecast/batch request body. Absent
// fields mean the same as absent URL parameters.
type batchQuery struct {
	Model  string `json:"model,omitempty"`
	Target string `json:"target,omitempty"`
	H      *int   `json:"h,omitempty"`
	W      *int   `json:"w,omitempty"`
	T      *int   `json:"t,omitempty"`
	K      *int   `json:"k,omitempty"`
}

// normalize maps the JSON form onto the shared query shape.
func (q batchQuery) normalize() forecastQuery {
	opt := func(v *int) string {
		if v == nil {
			return ""
		}
		return strconv.Itoa(*v)
	}
	return forecastQuery{model: q.Model, target: q.Target,
		h: opt(q.H), w: opt(q.W), t: opt(q.T), k: opt(q.K)}
}

// httpError is a handler failure with its response status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func failf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// sectorScore is one ranking entry.
type sectorScore struct {
	Sector int     `json:"sector"`
	Score  float64 `json:"score"`
}

// evaluate resolves fq against the artifact-set snapshot, predicts and
// ranks, charging each stage (artifact lookup, predict, rank) of a
// successful evaluation to the stage histograms via sp. The single and
// batch endpoints both come here, so their rankings are bit-identical by
// construction (each batch query carries its own span).
func (s *server) evaluate(set *artifactSet, fq forecastQuery, sp *obs.Span) (map[string]any, *httpError) {
	tr, herr := selectArtifact(set, fq)
	if herr != nil {
		return nil, herr
	}
	t, err := intOrDefault(fq.t, "t", s.p.Days()-1)
	if err != nil {
		return nil, failf(http.StatusBadRequest, "%v", err)
	}
	k, err := intOrDefault(fq.k, "k", 10)
	if err != nil || k < 1 {
		return nil, failf(http.StatusBadRequest, "bad k")
	}
	sp.Mark(stLookup)
	scores, err := s.p.Predict(tr, t, tr.Window())
	if err != nil {
		return nil, failf(http.StatusBadRequest, "%v", err)
	}
	sp.Mark(stPredict)
	top := core.TopK(scores, k)
	ranked := make([]sectorScore, len(top))
	for i, id := range top {
		ranked[i] = sectorScore{Sector: id, Score: scores[id]}
	}
	sp.Mark(stRank)
	s.m.forecasts.Inc()
	return map[string]any{
		"model":        tr.ModelName(),
		"target":       tr.Target().String(),
		"t":            t,
		"h":            tr.Horizon(),
		"w":            tr.Window(),
		"forecast_day": t + tr.Horizon(),
		"top":          ranked,
	}, nil
}

func (s *server) handleForecast(w http.ResponseWriter, r *http.Request) {
	s.m.reqForecast.Inc()
	sp := obs.StartSpan()
	if !s.sem.TryAcquire() {
		s.m.shedForecast.Inc()
		markShed(w, "capacity")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "server at capacity, retry later"})
		return
	}
	defer s.sem.Release()
	sp.Mark(stAdmission)
	if s.testHookForecast != nil {
		s.testHookForecast()
	}

	start := time.Now()
	body, herr := s.evaluate(s.active.Load(), queryFromURL(r.URL.Query()), &sp)
	if herr != nil {
		s.m.errForecast.Inc()
		writeJSON(w, herr.status, map[string]any{"error": herr.msg})
		return
	}
	body["elapsed_ms"] = time.Since(start).Milliseconds()
	writeJSON(w, http.StatusOK, body)
	sp.Mark(stEncode)
	s.m.observeStages(&sp)
	s.m.latForecast.ObserveDuration(sp.Total())
}

// handleBatch scores many queries in one round trip with weighted
// admission: a batch of k queries charges min(k, -max-inflight) slots —
// not the single slot of a /forecast call — so -max-inflight bounds
// concurrent forecast work rather than concurrent requests, and a burst of
// large batches sheds load exactly like the same burst of single calls.
// The charge is one atomic all-or-nothing claim after parsing (503 when
// the remaining capacity cannot cover it; the cap keeps a full batch
// admissible on an idle server; parsing itself is cheap and body-bounded,
// so it runs unadmitted — holding a partial claim across the parse would
// let two concurrent batches starve each other into mutual 503s). The
// handler snapshots the active artifact set once (every query in a batch
// sees one generation, even across a concurrent hot swap) and fans the
// queries across cores through internal/parallel. Per-query failures land
// inline so one bad query cannot void its siblings.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.m.reqBatch.Inc()
	t0 := time.Now()
	var req struct {
		Queries []batchQuery `json:"queries"`
	}
	// Bound the body before decoding — the decoder must not buffer an
	// arbitrarily large request first. The cap scales with -batch-max
	// (512 bytes per query is several times a fully specified one).
	r.Body = http.MaxBytesReader(w, r.Body, 4096+int64(s.batchMax)*512)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.m.errBatch.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Queries) == 0 {
		s.m.errBatch.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "empty batch: pass at least one query"})
		return
	}
	if len(req.Queries) > s.batchMax {
		s.m.errBatch.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("batch of %d exceeds the %d-query limit", len(req.Queries), s.batchMax)})
		return
	}
	s.m.batchQueries.Add(uint64(len(req.Queries)))
	cost := len(req.Queries)
	if max := s.sem.Cap(); cost > max {
		cost = max
	}
	if !s.sem.TryAcquireN(cost) {
		s.m.shedBatch.Inc()
		markShed(w, "capacity")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": fmt.Sprintf("server at capacity: batch of %d needs %d of %d slots, retry later",
				len(req.Queries), cost, s.sem.Cap())})
		return
	}
	defer s.sem.ReleaseN(cost)
	s.m.stageAdmission.ObserveDuration(time.Since(t0))
	if s.testHookForecast != nil {
		s.testHookForecast()
	}

	start := time.Now()
	set := s.active.Load()
	workers := cost
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}
	results, _ := parallel.Map(workers, req.Queries, func(i int, q batchQuery) (map[string]any, error) {
		// Each query gets its own span: lookup/predict/rank decompose per
		// forecast, not per HTTP request.
		qsp := obs.StartSpan()
		body, herr := s.evaluate(set, q.normalize(), &qsp)
		if herr != nil {
			s.m.errBatch.Inc()
			return map[string]any{"error": herr.msg, "status": herr.status}, nil
		}
		s.m.stageLookup.ObserveDuration(qsp.Stage(stLookup))
		s.m.stagePredict.ObserveDuration(qsp.Stage(stPredict))
		s.m.stageRank.ObserveDuration(qsp.Stage(stRank))
		return body, nil
	})
	enc0 := time.Now()
	writeJSON(w, http.StatusOK, map[string]any{
		"results":    results,
		"elapsed_ms": time.Since(start).Milliseconds(),
	})
	s.m.stageEncode.ObserveDuration(time.Since(enc0))
	s.m.latBatch.ObserveDuration(time.Since(t0))
}

// selectArtifact resolves the query's model/target/h/w selectors to
// exactly one artifact of the set snapshot.
func selectArtifact(set *artifactSet, fq forecastQuery) (forecast.Trained, *httpError) {
	if fq.target != "" && fq.target != "hot" && fq.target != "become" {
		return nil, failf(http.StatusBadRequest, "unknown target %q (hot | become)", fq.target)
	}
	var matches []forecast.Trained
	for _, sm := range set.models {
		tr := sm.tr
		if fq.model != "" && fq.model != tr.ModelName() {
			continue
		}
		if fq.target == "hot" && tr.Target() != forecast.BeHot {
			continue
		}
		if fq.target == "become" && tr.Target() != forecast.BecomeHot {
			continue
		}
		if fq.h != "" && fq.h != strconv.Itoa(tr.Horizon()) {
			continue
		}
		if fq.w != "" && fq.w != strconv.Itoa(tr.Window()) {
			continue
		}
		matches = append(matches, tr)
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return nil, failf(http.StatusNotFound, "no artifact matches the request; /healthz lists the loaded models")
	default:
		ids := make([]string, len(matches))
		for i, tr := range matches {
			ids[i] = artifactID(tr)
		}
		return nil, failf(http.StatusBadRequest, "ambiguous request matches %s; add model/target/h/w selectors", strings.Join(ids, ", "))
	}
}

func intOrDefault(raw, key string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
