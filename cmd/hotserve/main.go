// Command hotserve is the inference half of the train-once workflow: it
// loads trained-model artifacts (written by hotforecast -model-out or
// core.Pipeline.SaveModel), rebuilds the serving context from the same
// dataset the models were trained on, and serves per-sector hot-spot
// forecasts over HTTP. Nothing is fitted at serve time — requests only
// extract the feature window ending at the requested day and run the
// preloaded artifact, so latency is prediction-only.
//
// Usage:
//
//	hotforecast -sectors 600 -seed 2 -models RF-F1 -t 60 -h 7 -w 7 -model-out rf.hotm
//	hotserve    -sectors 600 -seed 2 -models rf.hotm -addr :8080
//	curl 'http://localhost:8080/healthz'
//	curl 'http://localhost:8080/forecast?model=RF-F1&t=70&k=10'
//
// Endpoints:
//
//	GET /healthz   liveness + the loaded artifact inventory
//	GET /forecast  top-k sector ranking; params: model, target (hot|become),
//	               h, w (artifact selectors), t (predict day, default latest),
//	               k (ranking size, default 10)
//
// Concurrent /forecast requests are bounded by -max-inflight (admission
// control through internal/parallel's semaphore); excess requests get 503
// rather than queuing without bound.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/parallel"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotserve: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point: it builds the serving context, loads
// the artifacts and blocks serving HTTP.
func run(args []string, out io.Writer) error {
	srv, addr, err := setup(args, out)
	if err != nil {
		return err
	}
	return http.ListenAndServe(addr, srv)
}

// setup parses flags and assembles the server without binding the socket,
// so tests can drive the handler directly.
func setup(args []string, out io.Writer) (*server, string, error) {
	fs := flag.NewFlagSet("hotserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		in       = fs.String("in", "", "dataset path (empty = generate; must match the training dataset)")
		sectors  = fs.Int("sectors", 600, "sectors when generating")
		weeks    = fs.Int("weeks", 0, "weeks when generating (0 = the paper's 18)")
		seed     = fs.Uint64("seed", 1, "seed when generating")
		models   = fs.String("models", "", "comma-separated trained-artifact paths to preload (required)")
		cacheMB  = fs.Int("cache-mb", 256, "feature-matrix cache budget in MiB (0 disables caching)")
		inflight = fs.Int("max-inflight", 2*runtime.GOMAXPROCS(0), "max concurrent /forecast requests; excess gets 503")
	)
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	if *models == "" {
		return nil, "", fmt.Errorf("-models is required: pass at least one artifact written by hotforecast -model-out")
	}

	cfg := core.Config{Seed: *seed, Sectors: *sectors, Weeks: *weeks,
		CacheBytes: forecast.CacheBytesMB(*cacheMB)}
	var p *core.Pipeline
	var err error
	if *in == "" {
		p, err = core.NewPipeline(cfg)
	} else {
		var ds *simnet.Dataset
		if ds, err = simnet.LoadFile(*in); err == nil {
			p, err = core.FromDataset(ds, cfg)
		}
	}
	if err != nil {
		return nil, "", err
	}

	var arts []forecast.Trained
	for _, path := range strings.Split(*models, ",") {
		path = strings.TrimSpace(path)
		tr, err := forecast.LoadModelFile(path)
		if err != nil {
			return nil, "", err
		}
		arts = append(arts, tr)
		fmt.Fprintf(out, "loaded %s: %s target %s, h=%d w=%d, cutoff day %d\n",
			path, tr.ModelName(), tr.Target(), tr.Horizon(), tr.Window(), tr.Cutoff())
	}

	srv, err := newServer(p, arts, *inflight)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(out, "serving %d sectors x %d days with %d artifact(s) on %s (max %d in-flight forecasts)\n",
		p.Sectors(), p.Days(), len(arts), *addr, *inflight)
	return srv, *addr, nil
}

// server holds the immutable serving state: the pipeline (data + caches)
// and the preloaded artifacts.
type server struct {
	p     *core.Pipeline
	arts  []forecast.Trained
	sem   *parallel.Semaphore
	mux   *http.ServeMux
	start time.Time
}

func newServer(p *core.Pipeline, arts []forecast.Trained, maxInflight int) (*server, error) {
	if len(arts) == 0 {
		return nil, fmt.Errorf("hotserve: no artifacts to serve")
	}
	seen := map[string]bool{}
	for _, tr := range arts {
		id := artifactID(tr)
		if seen[id] {
			return nil, fmt.Errorf("hotserve: duplicate artifact %s", id)
		}
		seen[id] = true
	}
	s := &server{p: p, arts: arts, sem: parallel.NewSemaphore(maxInflight), mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /forecast", s.handleForecast)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func artifactID(tr forecast.Trained) string {
	return fmt.Sprintf("%s/%s/h=%d/w=%d", tr.ModelName(), tr.Target(), tr.Horizon(), tr.Window())
}

// modelInfo is the artifact inventory entry of /healthz.
type modelInfo struct {
	Model  string `json:"model"`
	Target string `json:"target"`
	H      int    `json:"h"`
	W      int    `json:"w"`
	Cutoff int    `json:"cutoff"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	infos := make([]modelInfo, len(s.arts))
	for i, tr := range s.arts {
		infos[i] = modelInfo{Model: tr.ModelName(), Target: tr.Target().String(),
			H: tr.Horizon(), W: tr.Window(), Cutoff: tr.Cutoff()}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"sectors":   s.p.Sectors(),
		"days":      s.p.Days(),
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"models":    infos,
	})
}

// sectorScore is one /forecast ranking entry.
type sectorScore struct {
	Sector int     `json:"sector"`
	Score  float64 `json:"score"`
}

func (s *server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if !s.sem.TryAcquire() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "server at capacity, retry later"})
		return
	}
	defer s.sem.Release()

	q := r.URL.Query()
	tr, err := s.selectArtifact(q)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "no artifact") {
			status = http.StatusNotFound
		}
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	t, err := intParam(q, "t", s.p.Days()-1)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	k, err := intParam(q, "k", 10)
	if err != nil || k < 1 {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad k"})
		return
	}

	start := time.Now()
	scores, err := s.p.Predict(tr, t, tr.Window())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	top := core.TopK(scores, k)
	ranked := make([]sectorScore, len(top))
	for i, id := range top {
		ranked[i] = sectorScore{Sector: id, Score: scores[id]}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":        tr.ModelName(),
		"target":       tr.Target().String(),
		"t":            t,
		"h":            tr.Horizon(),
		"w":            tr.Window(),
		"forecast_day": t + tr.Horizon(),
		"top":          ranked,
		"elapsed_ms":   time.Since(start).Milliseconds(),
	})
}

// selectArtifact resolves the query's model/target/h/w selectors to
// exactly one preloaded artifact.
func (s *server) selectArtifact(q map[string][]string) (forecast.Trained, error) {
	get := func(key string) string {
		if vs := q[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	wantTarget := get("target")
	if wantTarget != "" && wantTarget != "hot" && wantTarget != "become" {
		return nil, fmt.Errorf("unknown target %q (hot | become)", wantTarget)
	}
	var matches []forecast.Trained
	for _, tr := range s.arts {
		if m := get("model"); m != "" && m != tr.ModelName() {
			continue
		}
		if wantTarget == "hot" && tr.Target() != forecast.BeHot {
			continue
		}
		if wantTarget == "become" && tr.Target() != forecast.BecomeHot {
			continue
		}
		if hs := get("h"); hs != "" && hs != strconv.Itoa(tr.Horizon()) {
			continue
		}
		if ws := get("w"); ws != "" && ws != strconv.Itoa(tr.Window()) {
			continue
		}
		matches = append(matches, tr)
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return nil, fmt.Errorf("no artifact matches the request; /healthz lists the loaded models")
	default:
		ids := make([]string, len(matches))
		for i, tr := range matches {
			ids[i] = artifactID(tr)
		}
		return nil, fmt.Errorf("ambiguous request matches %s; add model/target/h/w selectors", strings.Join(ids, ", "))
	}
}

func intParam(q map[string][]string, key string, def int) (int, error) {
	vs := q[key]
	if len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	v, err := strconv.Atoi(vs[0])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, vs[0])
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
