package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/forecast"
	"repro/internal/obs"
)

// serverMetrics holds every server-scoped series, pre-registered at
// construction on a per-server obs.Registry (not the process-wide one:
// tests build several servers in one process, and lifetime request counts
// must not bleed across them). GET /metrics renders this registry
// concatenated with obs.Default(), so one scrape covers both the serving
// layer and the library layers beneath it.
//
// Request-path contract: handlers touch only these pre-registered
// pointers — single atomic ops, no lookups, no labels rendered per
// request.
type serverMetrics struct {
	registry *obs.Registry

	reqForecast, reqBatch, reqHealthz, reqReload *obs.Counter
	errForecast, errBatch                        *obs.Counter
	shedForecast, shedBatch                      *obs.Counter

	// forecasts counts successful forecast evaluations — one per single
	// call, one per batch query that succeeded. hotblast cross-checks this
	// against its client-side count.
	forecasts    *obs.Counter
	batchQueries *obs.Counter
	reloads      *obs.Counter

	latForecast, latBatch *obs.Histogram

	stageAdmission, stageLookup, stagePredict, stageRank, stageEncode *obs.Histogram
}

// Span stage indices for the request decomposition. The library layers
// time their own finer stages (mltree_quantize/descend, forecast_feature_
// fetch) on the process registry; these five add up to a request.
const (
	stAdmission = iota
	stLookup
	stPredict
	stRank
	stEncode
)

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{registry: reg}
	route := func(r string) obs.Label { return obs.Label{Key: "route", Value: r} }
	stage := func(s string) obs.Label { return obs.Label{Key: "stage", Value: s} }

	const reqHelp = "HTTP requests received"
	m.reqForecast = reg.Counter("hotserve_requests_total", reqHelp, route("/forecast"))
	m.reqBatch = reg.Counter("hotserve_requests_total", reqHelp, route("/forecast/batch"))
	m.reqHealthz = reg.Counter("hotserve_requests_total", reqHelp, route("/healthz"))
	m.reqReload = reg.Counter("hotserve_requests_total", reqHelp, route("/reload"))

	const errHelp = "requests answered with an error status (sheds counted separately)"
	m.errForecast = reg.Counter("hotserve_errors_total", errHelp, route("/forecast"))
	m.errBatch = reg.Counter("hotserve_errors_total", errHelp, route("/forecast/batch"))

	const shedHelp = "requests shed with 503 by admission control"
	m.shedForecast = reg.Counter("hotserve_sheds_total", shedHelp, route("/forecast"))
	m.shedBatch = reg.Counter("hotserve_sheds_total", shedHelp, route("/forecast/batch"))

	m.forecasts = reg.Counter("hotserve_forecasts_total",
		"successful forecast evaluations (single calls and batch queries)")
	m.batchQueries = reg.Counter("hotserve_batch_queries_total",
		"queries received inside /forecast/batch requests")
	m.reloads = reg.Counter("hotserve_reloads_total",
		"artifact-set hot swaps (watch ticks and POST /reload)")

	const latHelp = "end-to-end request latency"
	m.latForecast = reg.Histogram("hotserve_request_seconds", latHelp, obs.LatencyBuckets, route("/forecast"))
	m.latBatch = reg.Histogram("hotserve_request_seconds", latHelp, obs.LatencyBuckets, route("/forecast/batch"))

	const stageHelp = "per-stage request latency decomposition"
	m.stageAdmission = reg.Histogram("hotserve_stage_seconds", stageHelp, obs.MicroLatencyBuckets, stage("admission"))
	m.stageLookup = reg.Histogram("hotserve_stage_seconds", stageHelp, obs.MicroLatencyBuckets, stage("lookup"))
	m.stagePredict = reg.Histogram("hotserve_stage_seconds", stageHelp, obs.MicroLatencyBuckets, stage("predict"))
	m.stageRank = reg.Histogram("hotserve_stage_seconds", stageHelp, obs.MicroLatencyBuckets, stage("rank"))
	m.stageEncode = reg.Histogram("hotserve_stage_seconds", stageHelp, obs.MicroLatencyBuckets, stage("encode"))
	return m
}

// observeStages folds a completed request span into the stage histograms.
func (m *serverMetrics) observeStages(sp *obs.Span) {
	m.stageAdmission.ObserveDuration(sp.Stage(stAdmission))
	m.stageLookup.ObserveDuration(sp.Stage(stLookup))
	m.stagePredict.ObserveDuration(sp.Stage(stPredict))
	m.stageRank.ObserveDuration(sp.Stage(stRank))
	m.stageEncode.ObserveDuration(sp.Stage(stEncode))
}

// registerInventory exports the active artifact set as scrape-time gauges:
// the aggregate engine vitals /healthz reports, plus one labeled sample
// per served artifact for descent mode and mmap residency. The functions
// snapshot s.active at scrape time, so the series track hot swaps with no
// bookkeeping on the reload path.
func (s *server) registerInventory() {
	reg := s.m.registry
	sum := func() inventorySummary { return summarize(s.active.Load()) }
	reg.GaugeFunc("hotserve_models", "artifacts in the active serving set",
		func() float64 { return float64(len(sum().infos)) })
	reg.GaugeFunc("hotserve_flattened_models", "active artifacts serving through the flat batch engine",
		func() float64 { return float64(sum().flattened) })
	reg.GaugeFunc("hotserve_binned_models", "active flat artifacts descending on quantized bin codes",
		func() float64 { return float64(sum().binned) })
	reg.GaugeFunc("hotserve_mmap_models", "active artifacts serving off memory-mapped files",
		func() float64 { return float64(sum().mapped) })
	reg.GaugeFunc("hotserve_flat_bytes", "flat-engine in-memory footprint across active artifacts",
		func() float64 { return float64(sum().flatBytes) })
	reg.GaugeFunc("hotserve_mmap_bytes", "artifact bytes served from memory-mapped files",
		func() float64 { return float64(sum().mmapBytes) })
	reg.GaugeFunc("hotserve_heap_flat_bytes", "flat footprint of heap-resident artifacts",
		func() float64 { return float64(sum().heapBytes) })
	reg.GaugeFunc("hotserve_degraded_tasks",
		"tasks whose newest version failed verification (serving carried-forward or fallback artifacts)",
		func() float64 {
			set := s.active.Load()
			if set == nil {
				return 0
			}
			return float64(len(set.degraded))
		})
	reg.GaugeSet("hotserve_artifact_mmap_bytes",
		"per-artifact mmap-backed bytes (0 = heap-resident)", func() []obs.LabeledValue {
			set := s.active.Load()
			if set == nil {
				return nil
			}
			out := make([]obs.LabeledValue, 0, len(set.models))
			for _, sm := range set.models {
				var mb int64
				if dm, ok := sm.tr.(descentModel); ok {
					mb = dm.MmapBytes()
				}
				out = append(out, obs.LabeledValue{Labels: artifactLabels(sm, false), Value: float64(mb)})
			}
			return out
		})
	reg.GaugeSet("hotserve_artifact_info",
		"one sample per served artifact; the descent label carries the kernel mode", func() []obs.LabeledValue {
			set := s.active.Load()
			if set == nil {
				return nil
			}
			out := make([]obs.LabeledValue, 0, len(set.models))
			for _, sm := range set.models {
				out = append(out, obs.LabeledValue{Labels: artifactLabels(sm, true), Value: 1})
			}
			return out
		})
}

// artifactLabels renders one served artifact's identity label set;
// withDescent adds the kernel-mode label for the info series.
func artifactLabels(sm servedModel, withDescent bool) []obs.Label {
	ls := []obs.Label{
		{Key: "model", Value: sm.tr.ModelName()},
		{Key: "target", Value: sm.tr.Target().String()},
		{Key: "h", Value: strconv.Itoa(sm.tr.Horizon())},
		{Key: "w", Value: strconv.Itoa(sm.tr.Window())},
	}
	if sm.version > 0 {
		ls = append(ls, obs.Label{Key: "version", Value: strconv.Itoa(sm.version)})
	}
	if withDescent {
		mode := "walked"
		if dm, ok := sm.tr.(descentModel); ok {
			mode = dm.DescentMode()
		}
		ls = append(ls, obs.Label{Key: "descent", Value: mode})
	}
	return ls
}

// inventorySummary is the aggregate view of one artifact set — the single
// source both /healthz's inference block and the hotserve_* gauges read.
type inventorySummary struct {
	infos                           []modelInfo
	flattened, binned, mapped       int
	flatBytes, mmapBytes, heapBytes int64
}

// summarize walks one artifact-set snapshot. Tolerates nil (a scrape
// before the inventory is attached).
func summarize(set *artifactSet) inventorySummary {
	var sum inventorySummary
	if set == nil {
		return sum
	}
	sum.infos = make([]modelInfo, len(set.models))
	for i, sm := range set.models {
		sum.infos[i] = modelInfo{Model: sm.tr.ModelName(), Target: sm.tr.Target().String(),
			H: sm.tr.Horizon(), W: sm.tr.Window(), Cutoff: sm.tr.Cutoff(), Version: sm.version}
		fb := int64(0)
		if fm, ok := sm.tr.(forecast.FlatModel); ok && fm.FlatBytes() > 0 {
			sum.flattened++
			fb = fm.FlatBytes()
			sum.flatBytes += fb
		}
		if dm, ok := sm.tr.(descentModel); ok {
			sum.infos[i].Descent = dm.DescentMode()
			sum.infos[i].MmapBytes = dm.MmapBytes()
			if dm.DescentMode() == "binned" {
				sum.binned++
			}
			if dm.MmapBytes() > 0 {
				sum.mapped++
				sum.mmapBytes += dm.MmapBytes()
			} else {
				sum.heapBytes += fb
			}
		}
	}
	return sum
}

// enablePprof mounts net/http/pprof on the serving mux (-pprof). Off by
// default: the profiling surface is a debugging tool, not part of the
// serving API.
func (s *server) enablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// accessRecorder wraps a ResponseWriter to capture the status (and any
// shed reason a handler sets) for the access log.
type accessRecorder struct {
	http.ResponseWriter
	status int
	shed   string
}

func (a *accessRecorder) WriteHeader(code int) {
	a.status = code
	a.ResponseWriter.WriteHeader(code)
}

// markShed records why a request was shed, so the access line can say
// "shed=capacity" instead of leaving a bare 503. No-op when the access
// log is off (the writer is not wrapped then).
func markShed(w http.ResponseWriter, reason string) {
	if rec, ok := w.(*accessRecorder); ok {
		rec.shed = reason
	}
}

// logAccess emits one structured key=value line per request:
// id, method, route, status, duration and shed reason.
func (s *server) logAccess(id uint64, r *http.Request, rec *accessRecorder, d time.Duration) {
	shed := rec.shed
	if shed == "" {
		shed = "-"
	}
	fmt.Fprintf(s.accessOut, "access id=%d method=%s route=%s status=%d dur_ms=%.3f shed=%s\n",
		id, r.Method, r.URL.Path, rec.status, float64(d.Nanoseconds())/1e6, shed)
}
