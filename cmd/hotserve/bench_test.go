package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/registry"
)

// benchServer preloads a registry-backed server with one published
// artifact per model kind, so the serving hot path is measured end to end:
// route → select → predict (through the feature cache) → rank → encode.
func benchServer(b *testing.B) *server {
	b.Helper()
	p := testPipeline(b)
	reg, err := registry.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	p.AttachRegistry(reg)
	for _, kind := range []core.ModelKind{core.Average, core.Tree} {
		tr, err := p.Train(kind, forecast.BeHot, 30, 3, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Publish(tr); err != nil {
			b.Fatal(err)
		}
	}
	srv := newServer(p, 64)
	if err := srv.attachRegistry(reg); err != nil {
		b.Fatal(err)
	}
	// Prime the feature cache so steady-state serving is measured, not the
	// first-request matrix build.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/forecast?model=Tree&t=30&k=10", nil))
	if rec.Code != 200 {
		b.Fatalf("prime request = %d %s", rec.Code, rec.Body.String())
	}
	return srv
}

// BenchmarkServeForecast measures single-request serving throughput
// against a preloaded registry: the /forecast hot path one request at a
// time.
func BenchmarkServeForecast(b *testing.B) {
	srv := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/forecast?model=Tree&t=30&k=10", nil))
		if rec.Code != 200 {
			b.Fatalf("forecast = %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeBatch measures the amortized per-forecast cost of
// /forecast/batch: batchSize queries per round trip, fanned across cores.
// Compare forecasts/s here against req/s of BenchmarkServeForecast for the
// batching win.
func BenchmarkServeBatch(b *testing.B) {
	const batchSize = 16
	srv := benchServer(b)
	var queries []string
	for i := 0; i < batchSize; i++ {
		queries = append(queries, fmt.Sprintf(`{"model":"Tree","t":%d,"k":10}`, 30+i%3))
	}
	body := `{"queries":[` + strings.Join(queries, ",") + `]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/forecast/batch", strings.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("batch = %d", rec.Code)
		}
	}
	b.StopTimer()
	// One decoded sanity check: every entry scored.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/forecast/batch", strings.NewReader(body)))
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out["results"].([]any)) != batchSize {
		b.Fatalf("batch response shape: %v %v", err, out)
	}
	b.ReportMetric(float64(b.N)*batchSize/b.Elapsed().Seconds(), "forecasts/s")
}
