package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/forecast"
)

// testServer builds a tiny pipeline, trains two artifacts and wires them
// into a server with the given admission bound.
func testServer(t *testing.T, maxInflight int) (*server, *core.Pipeline) {
	t.Helper()
	p, err := core.NewPipeline(core.Config{Seed: 2, Sectors: 150, Weeks: 8, TrainDays: 3, ForestTrees: 4})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := p.Train(core.Average, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := p.Train(core.Tree, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(p, []forecast.Trained{avg, tree}, maxInflight)
	if err != nil {
		t.Fatal(err)
	}
	return srv, p
}

func get(t *testing.T, srv *server, url string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: non-JSON response %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, body
}

func TestHealthz(t *testing.T) {
	srv, p := testServer(t, 4)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	if int(body["sectors"].(float64)) != p.Sectors() || int(body["days"].(float64)) != p.Days() {
		t.Fatalf("healthz shape = %v", body)
	}
	models := body["models"].([]any)
	if len(models) != 2 {
		t.Fatalf("models = %v", models)
	}
	first := models[0].(map[string]any)
	if first["model"] != "Average" || first["h"].(float64) != 3 {
		t.Fatalf("model inventory = %v", first)
	}
}

func TestForecastEndpoint(t *testing.T) {
	srv, p := testServer(t, 4)
	code, body := get(t, srv, "/forecast?model=Tree&t=30&k=5")
	if code != http.StatusOK {
		t.Fatalf("forecast = %d %v", code, body)
	}
	if body["model"] != "Tree" || body["forecast_day"].(float64) != 33 {
		t.Fatalf("forecast meta = %v", body)
	}
	top := body["top"].([]any)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	// Scores arrive ranked descending.
	prev := 2.0
	for _, e := range top {
		s := e.(map[string]any)["score"].(float64)
		if s > prev {
			t.Fatalf("ranking not descending: %v", top)
		}
		prev = s
	}
	// Deterministic across calls.
	_, again := get(t, srv, "/forecast?model=Tree&t=30&k=5")
	a, _ := json.Marshal(body["top"])
	b, _ := json.Marshal(again["top"])
	if string(a) != string(b) {
		t.Fatalf("forecast not deterministic:\n%s\n%s", a, b)
	}
	// Default t is the latest day with a full window.
	code, body = get(t, srv, "/forecast?model=Average")
	if code != http.StatusOK || int(body["t"].(float64)) != p.Days()-1 {
		t.Fatalf("default-t forecast = %d %v", code, body)
	}
}

func TestForecastSelectionErrors(t *testing.T) {
	srv, _ := testServer(t, 4)
	if code, _ := get(t, srv, "/forecast?model=RF-F1"); code != http.StatusNotFound {
		t.Fatalf("unknown model = %d, want 404", code)
	}
	if code, body := get(t, srv, "/forecast"); code != http.StatusBadRequest ||
		!strings.Contains(body["error"].(string), "ambiguous") {
		t.Fatalf("ambiguous selection = %d %v", code, body)
	}
	if code, _ := get(t, srv, "/forecast?model=Tree&t=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad t = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/forecast?model=Tree&t=2"); code != http.StatusBadRequest {
		t.Fatalf("t without window history = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/forecast?model=Tree&k=0"); code != http.StatusBadRequest {
		t.Fatalf("k=0 = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/forecast?target=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad target = %d, want 400", code)
	}
}

// TestForecastAdmissionControl: when every slot is held, /forecast sheds
// load with 503 instead of queuing; /healthz stays available.
func TestForecastAdmissionControl(t *testing.T) {
	srv, _ := testServer(t, 1)
	srv.sem.Acquire() // occupy the only slot
	code, body := get(t, srv, "/forecast?model=Tree")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated forecast = %d %v, want 503", code, body)
	}
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz unavailable while saturated: %d", code)
	}
	srv.sem.Release()
	if code, _ := get(t, srv, "/forecast?model=Tree"); code != http.StatusOK {
		t.Fatalf("freed slot still refused: %d", code)
	}
}

func TestNewServerRejectsDuplicates(t *testing.T) {
	srv, p := testServer(t, 1)
	if _, err := newServer(p, []forecast.Trained{srv.arts[0], srv.arts[0]}, 1); err == nil {
		t.Fatal("duplicate artifact accepted")
	}
	if _, err := newServer(p, nil, 1); err == nil {
		t.Fatal("empty artifact set accepted")
	}
}

// TestSetupFromArtifactFile: the flag path — train via the core pipeline,
// save to disk, then boot the server from the file.
func TestSetupFromArtifactFile(t *testing.T) {
	p, err := core.NewPipeline(core.Config{Seed: 2, Sectors: 150, Weeks: 8, TrainDays: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Train(core.Average, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "avg.hotm")
	if err := p.SaveModel(path, tr); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	srv, addr, err := setup([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-models", path, "-addr", "127.0.0.1:0",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", addr)
	}
	if !strings.Contains(buf.String(), "loaded "+path) || !strings.Contains(buf.String(), "serving") {
		t.Fatalf("missing startup summary:\n%s", buf.String())
	}
	if code, _ := get(t, srv, "/forecast?model=Average&t=30"); code != http.StatusOK {
		t.Fatalf("served forecast = %d", code)
	}
	if _, _, err := setup([]string{"-sectors", "150"}, &strings.Builder{}); err == nil {
		t.Fatal("missing -models accepted")
	}
}
