package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/registry"
)

func testPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.Config{Seed: 2, Sectors: 150, Weeks: 8, TrainDays: 3, ForestTrees: 4})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testServer builds a tiny pipeline, trains two artifacts and wires them
// into a static-mode server with the given admission bound.
func testServer(t testing.TB, maxInflight int) (*server, *core.Pipeline) {
	t.Helper()
	p := testPipeline(t)
	avg, err := p.Train(core.Average, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := p.Train(core.Tree, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(p, maxInflight)
	if err := srv.setStatic([]forecast.Trained{avg, tree}); err != nil {
		t.Fatal(err)
	}
	return srv, p
}

// registryServer builds a registry with one published Average version and
// a server in registry mode on top of it, returning both plus a publisher
// handle for later versions.
func registryServer(t testing.TB) (*server, *core.Pipeline, *registry.Registry) {
	t.Helper()
	p := testPipeline(t)
	dir := t.TempDir()
	pub, err := registry.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Train(core.Average, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(tr); err != nil {
		t.Fatal(err)
	}
	srv := newServer(p, 8)
	reg, err := registry.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.attachRegistry(reg); err != nil {
		t.Fatal(err)
	}
	return srv, p, pub
}

func get(t testing.TB, srv *server, url string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: non-JSON response %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, body
}

func post(t testing.TB, srv *server, url, body string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", url, strings.NewReader(body)))
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: non-JSON response %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, out
}

func TestHealthz(t *testing.T) {
	srv, p := testServer(t, 4)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" || body["mode"] != "static" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	if int(body["sectors"].(float64)) != p.Sectors() || int(body["days"].(float64)) != p.Days() {
		t.Fatalf("healthz shape = %v", body)
	}
	models := body["models"].([]any)
	if len(models) != 2 {
		t.Fatalf("models = %v", models)
	}
	first := models[0].(map[string]any)
	if first["model"] != "Average" || first["h"].(float64) != 3 {
		t.Fatalf("model inventory = %v", first)
	}
	// Per-model descent mode: the Tree artifact descends (binned or
	// float), the Average baseline has no engine and omits the field.
	if d, ok := first["descent"]; ok {
		t.Fatalf("baseline reports a descent mode: %v", d)
	}
	second := models[1].(map[string]any)
	if d := second["descent"]; d != "binned" && d != "float" {
		t.Fatalf("classifier descent mode = %v", d)
	}
	// The inference block: the Tree artifact carries a flat engine (the
	// Average baseline does not), and serving a forecast through it must
	// move the batch-call counter. Static-mode artifacts live on the heap,
	// so nothing is mmap-backed here.
	inf := body["inference"].(map[string]any)
	if inf["flattened_models"].(float64) != 1 || inf["flat_bytes"].(float64) <= 0 {
		t.Fatalf("inference stats = %v", inf)
	}
	if inf["mmap_models"].(float64) != 0 || inf["mmap_bytes"].(float64) != 0 {
		t.Fatalf("static artifacts claim mmap backing: %v", inf)
	}
	if inf["heap_flat_bytes"].(float64) != inf["flat_bytes"].(float64) {
		t.Fatalf("heap accounting disagrees with flat_bytes: %v", inf)
	}
	before := inf["batch_calls"].(float64)
	if code, fb := get(t, srv, "/forecast?model=Tree&t=30&k=5"); code != http.StatusOK {
		t.Fatalf("forecast for batch-counter check = %d %v", code, fb)
	}
	_, body = get(t, srv, "/healthz")
	after := body["inference"].(map[string]any)["batch_calls"].(float64)
	if after < before+1 {
		t.Fatalf("batch_calls did not advance: %v -> %v", before, after)
	}
}

// TestHealthzMmapRegistry: a classifier served out of a registry is
// loaded through the mmap path, so /healthz must report it as
// mmap-backed with a descent mode, and forecasts must still serve.
func TestHealthzMmapRegistry(t *testing.T) {
	p := testPipeline(t)
	dir := t.TempDir()
	pub, err := registry.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := p.Train(core.Tree, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(tree); err != nil {
		t.Fatal(err)
	}
	srv := newServer(p, 8)
	reg, err := registry.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.attachRegistry(reg); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, srv, "/healthz")
	m := body["models"].([]any)[0].(map[string]any)
	if d := m["descent"]; d != "binned" && d != "float" {
		t.Fatalf("registry classifier descent mode = %v", d)
	}
	inf := body["inference"].(map[string]any)
	if inf["mmap_models"].(float64) != 1 || inf["mmap_bytes"].(float64) <= 0 {
		t.Fatalf("registry artifact not mmap-backed: %v", inf)
	}
	if m["mmap_bytes"].(float64) != inf["mmap_bytes"].(float64) {
		t.Fatalf("per-model mmap bytes disagree with totals: %v vs %v", m, inf)
	}
	// A mapped artifact contributes nothing to the heap-resident tally.
	if inf["heap_flat_bytes"].(float64) != 0 {
		t.Fatalf("mapped artifact counted as heap-resident: %v", inf)
	}
	if code, fb := get(t, srv, "/forecast?model=Tree&t=30&k=5"); code != http.StatusOK {
		t.Fatalf("forecast through mmap-backed artifact = %d %v", code, fb)
	}
}

func TestForecastEndpoint(t *testing.T) {
	srv, p := testServer(t, 4)
	code, body := get(t, srv, "/forecast?model=Tree&t=30&k=5")
	if code != http.StatusOK {
		t.Fatalf("forecast = %d %v", code, body)
	}
	if body["model"] != "Tree" || body["forecast_day"].(float64) != 33 {
		t.Fatalf("forecast meta = %v", body)
	}
	top := body["top"].([]any)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	// Scores arrive ranked descending.
	prev := 2.0
	for _, e := range top {
		s := e.(map[string]any)["score"].(float64)
		if s > prev {
			t.Fatalf("ranking not descending: %v", top)
		}
		prev = s
	}
	// Deterministic across calls.
	_, again := get(t, srv, "/forecast?model=Tree&t=30&k=5")
	a, _ := json.Marshal(body["top"])
	b, _ := json.Marshal(again["top"])
	if string(a) != string(b) {
		t.Fatalf("forecast not deterministic:\n%s\n%s", a, b)
	}
	// Default t is the latest day with a full window.
	code, body = get(t, srv, "/forecast?model=Average")
	if code != http.StatusOK || int(body["t"].(float64)) != p.Days()-1 {
		t.Fatalf("default-t forecast = %d %v", code, body)
	}
}

func TestForecastSelectionErrors(t *testing.T) {
	srv, _ := testServer(t, 4)
	if code, _ := get(t, srv, "/forecast?model=RF-F1"); code != http.StatusNotFound {
		t.Fatalf("unknown model = %d, want 404", code)
	}
	if code, body := get(t, srv, "/forecast"); code != http.StatusBadRequest ||
		!strings.Contains(body["error"].(string), "ambiguous") {
		t.Fatalf("ambiguous selection = %d %v", code, body)
	}
	if code, _ := get(t, srv, "/forecast?model=Tree&t=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad t = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/forecast?model=Tree&t=2"); code != http.StatusBadRequest {
		t.Fatalf("t without window history = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/forecast?model=Tree&k=0"); code != http.StatusBadRequest {
		t.Fatalf("k=0 = %d, want 400", code)
	}
	if code, _ := get(t, srv, "/forecast?target=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad target = %d, want 400", code)
	}
}

// TestForecastAdmissionControl: when every slot is held, /forecast and
// /forecast/batch shed load with 503 instead of queuing; /healthz stays
// available.
func TestForecastAdmissionControl(t *testing.T) {
	srv, _ := testServer(t, 1)
	srv.sem.Acquire() // occupy the only slot
	code, body := get(t, srv, "/forecast?model=Tree")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated forecast = %d %v, want 503", code, body)
	}
	if code, _ := post(t, srv, "/forecast/batch", `{"queries":[{"model":"Tree"}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("saturated batch = %d, want 503", code)
	}
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz unavailable while saturated: %d", code)
	}
	srv.sem.Release()
	if code, _ := get(t, srv, "/forecast?model=Tree"); code != http.StatusOK {
		t.Fatalf("freed slot still refused: %d", code)
	}
}

// TestBatchWeightedAdmission: a /forecast/batch charges one -max-inflight
// slot per query (capped at capacity), all-or-nothing, so the admission
// bound tracks forecasts in flight rather than requests.
func TestBatchWeightedAdmission(t *testing.T) {
	srv, _ := testServer(t, 4)
	batch := func(k int) string {
		qs := make([]string, k)
		for i := range qs {
			qs[i] = `{"model":"Tree","t":30}`
		}
		return `{"queries":[` + strings.Join(qs, ",") + `]}`
	}

	// Idle server: a batch larger than the capacity still fits (cost caps
	// at -max-inflight) — weighted admission must not make big batches
	// unservable.
	if code, body := post(t, srv, "/forecast/batch", batch(6)); code != http.StatusOK {
		t.Fatalf("idle oversized batch = %d %v, want 200", code, body)
	}

	// With 2 of 4 slots held, a batch of 3 needs 3 free slots and must be
	// rejected whole; a batch of 2 fits exactly.
	srv.sem.Acquire()
	srv.sem.Acquire()
	code, body := post(t, srv, "/forecast/batch", batch(3))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("batch of 3 with 2 free slots = %d %v, want 503", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "needs 3 of 4 slots") {
		t.Fatalf("503 body does not explain the charge: %v", body)
	}
	if code, body := post(t, srv, "/forecast/batch", batch(2)); code != http.StatusOK {
		t.Fatalf("batch of 2 with 2 free slots = %d %v, want 200", code, body)
	}
	// The rejected and admitted batches must have released everything:
	// both held slots are still ours and the other two are free again.
	if !srv.sem.TryAcquireN(2) {
		t.Fatal("batch admission leaked slots")
	}
	srv.sem.ReleaseN(4)

	// All slots free again: the full-capacity batch is admitted.
	if code, _ := post(t, srv, "/forecast/batch", batch(4)); code != http.StatusOK {
		t.Fatalf("full-capacity batch after release = %d, want 200", code)
	}
}

// TestBatchConcurrentAdmission: the batch cost is one atomic claim, so two
// concurrent full-capacity batches on an idle server can never starve each
// other into mutual 503s — every round, at least one must be admitted.
func TestBatchConcurrentAdmission(t *testing.T) {
	srv, _ := testServer(t, 2)
	body := `{"queries":[{"model":"Tree","t":30},{"model":"Tree","t":30}]}`
	for round := 0; round < 20; round++ {
		codes := make(chan int, 2)
		for g := 0; g < 2; g++ {
			go func() {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("POST", "/forecast/batch", strings.NewReader(body)))
				codes <- rec.Code
			}()
		}
		a, b := <-codes, <-codes
		if a != http.StatusOK && b != http.StatusOK {
			t.Fatalf("round %d: concurrent batches mutually rejected (%d, %d) with full capacity free", round, a, b)
		}
	}
}

func TestSetStaticRejectsDuplicates(t *testing.T) {
	srv, p := testServer(t, 1)
	dup := srv.active.Load().models[0].tr
	if err := newServer(p, 1).setStatic([]forecast.Trained{dup, dup}); err == nil {
		t.Fatal("duplicate artifact accepted")
	}
	if err := newServer(p, 1).setStatic(nil); err == nil {
		t.Fatal("empty artifact set accepted")
	}
}

// TestSetupFromArtifactFile: the flag path — train via the core pipeline,
// save to disk, then boot the server from the file.
func TestSetupFromArtifactFile(t *testing.T) {
	p := testPipeline(t)
	tr, err := p.Train(core.Average, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "avg.hotm")
	if err := p.SaveModel(path, tr); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	srv, addr, err := setup([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2",
		"-models", path, "-addr", "127.0.0.1:0",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", addr)
	}
	if !strings.Contains(buf.String(), "loaded "+path) || !strings.Contains(buf.String(), "serving") {
		t.Fatalf("missing startup summary:\n%s", buf.String())
	}
	if code, _ := get(t, srv, "/forecast?model=Average&t=30"); code != http.StatusOK {
		t.Fatalf("served forecast = %d", code)
	}
	// Static mode has no registry to reload from.
	if code, _ := post(t, srv, "/reload", ""); code != http.StatusConflict {
		t.Fatalf("static-mode reload = %d, want 409", code)
	}
	if _, _, err := setup([]string{"-sectors", "150"}, &strings.Builder{}); err == nil {
		t.Fatal("missing -models/-registry accepted")
	}
	if _, _, err := setup([]string{"-models", path, "-registry", t.TempDir()}, &strings.Builder{}); err == nil {
		t.Fatal("-models together with -registry accepted")
	}
}

// TestSetupRejectsForeignArtifact: a dataset-fingerprint mismatch between
// the artifact and the serving context fails at startup, loudly, instead
// of serving wrong rankings.
func TestSetupRejectsForeignArtifact(t *testing.T) {
	other, err := core.NewPipeline(core.Config{Seed: 9, Sectors: 150, Weeks: 8, TrainDays: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := other.Train(core.Average, forecast.BeHot, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "foreign.hotm")
	if err := other.SaveModel(path, tr); err != nil {
		t.Fatal(err)
	}
	_, _, err = setup([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2", "-models", path,
	}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "different dataset") {
		t.Fatalf("foreign artifact served (err=%v)", err)
	}
}

// TestSetupFromRegistry: the registry flag path — publish two versions,
// boot from the directory, observe the latest one serving and /healthz
// reporting registry mode.
func TestSetupFromRegistry(t *testing.T) {
	p := testPipeline(t)
	dir := t.TempDir()
	reg, err := registry.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachRegistry(reg)
	for _, day := range []int{30, 31} {
		tr, err := p.Train(core.Average, forecast.BeHot, day, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Publish(tr); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	srv, _, err := setup([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2", "-registry", dir,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "loaded version 2") {
		t.Fatalf("startup summary missing version: %s", buf.String())
	}
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || body["mode"] != "registry" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	models := body["models"].([]any)
	if len(models) != 1 || models[0].(map[string]any)["version"].(float64) != 2 {
		t.Fatalf("registry healthz models = %v", models)
	}
	if code, body := get(t, srv, "/forecast?model=Average&t=31&k=3"); code != http.StatusOK {
		t.Fatalf("registry forecast = %d %v", code, body)
	}
	// An empty registry refuses to serve.
	if _, _, err := setup([]string{
		"-sectors", "150", "-weeks", "8", "-seed", "2", "-registry", t.TempDir(),
	}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "no artifacts") {
		t.Fatalf("empty registry served (err=%v)", err)
	}
}

// TestReloadHotSwap: POST /reload picks up versions published after boot
// and swaps them in; /healthz reports the new version and generation.
func TestReloadHotSwap(t *testing.T) {
	srv, p, pub := registryServer(t)
	if code, body := post(t, srv, "/reload", ""); code != http.StatusOK || body["reloaded"] != false {
		t.Fatalf("idle reload = %d %v", code, body)
	}
	_, before := get(t, srv, "/healthz")
	if v := before["models"].([]any)[0].(map[string]any)["version"].(float64); v != 1 {
		t.Fatalf("initial version = %v", v)
	}

	tr, err := p.Train(core.Average, forecast.BeHot, 31, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(tr); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, srv, "/reload", "")
	if code != http.StatusOK || body["reloaded"] != true {
		t.Fatalf("reload after publish = %d %v", code, body)
	}
	_, after := get(t, srv, "/healthz")
	m := after["models"].([]any)[0].(map[string]any)
	if m["version"].(float64) != 2 || m["cutoff"].(float64) != 28 {
		t.Fatalf("hot-swapped model = %v", m)
	}
	if after["reloads"].(float64) != 1 {
		t.Fatalf("reload counter = %v", after["reloads"])
	}
}

// TestHotSwapZeroDowntime is the acceptance test for the hot-swap path:
// continuous /forecast traffic across a /reload that swaps artifact
// versions must observe zero non-200 responses and consistent rankings
// (torn reads would trip the race detector and the per-response checks).
func TestHotSwapZeroDowntime(t *testing.T) {
	srv, p, pub := registryServer(t)
	var (
		stop    atomic.Bool
		bad     atomic.Int64
		served  atomic.Int64
		wg      sync.WaitGroup
		workers = 4
		badBody atomic.Value
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", "/forecast?model=Average&t=31&k=5", nil))
				served.Add(1)
				var body map[string]any
				if rec.Code != http.StatusOK || json.Unmarshal(rec.Body.Bytes(), &body) != nil {
					bad.Add(1)
					badBody.Store(fmt.Sprintf("%d %s", rec.Code, rec.Body.String()))
					continue
				}
				if top := body["top"].([]any); len(top) != 5 {
					bad.Add(1)
					badBody.Store(rec.Body.String())
				}
			}
		}()
	}
	// Publish and hot-swap three fresher versions under fire.
	for _, day := range []int{31, 32, 33} {
		tr, err := p.Train(core.Average, forecast.BeHot, day, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pub.Publish(tr); err != nil {
			t.Fatal(err)
		}
		if code, body := post(t, srv, "/reload", ""); code != http.StatusOK || body["reloaded"] != true {
			t.Fatalf("reload under load = %d %v", code, body)
		}
		time.Sleep(20 * time.Millisecond) // let traffic run on the new set
	}
	stop.Store(true)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d/%d requests failed across hot swaps; last: %v", n, served.Load(), badBody.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served during the swap window")
	}
	_, health := get(t, srv, "/healthz")
	if v := health["models"].([]any)[0].(map[string]any)["version"].(float64); v != 4 {
		t.Fatalf("final version = %v, want 4", v)
	}
}

// TestBatchMatchesSingleForecasts is the acceptance test for the batch
// endpoint: a /forecast/batch response must be bit-identical, query for
// query, to the same requests issued as single /forecast calls.
func TestBatchMatchesSingleForecasts(t *testing.T) {
	srv, _ := testServer(t, 8)
	queries := []string{
		"/forecast?model=Average&t=30&k=5",
		"/forecast?model=Tree&t=30&k=5",
		"/forecast?model=Tree&t=35&k=10",
		"/forecast?model=Average&k=3",
		"/forecast?model=Tree&t=2", // fails: no window history
	}
	batch := `{"queries":[
		{"model":"Average","t":30,"k":5},
		{"model":"Tree","t":30,"k":5},
		{"model":"Tree","t":35,"k":10},
		{"model":"Average","k":3},
		{"model":"Tree","t":2}
	]}`
	code, body := post(t, srv, "/forecast/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %v", code, body)
	}
	results := body["results"].([]any)
	if len(results) != len(queries) {
		t.Fatalf("results = %d, want %d", len(results), len(queries))
	}
	for i, q := range queries {
		singleCode, single := get(t, srv, q)
		entry := results[i].(map[string]any)
		if singleCode != http.StatusOK {
			if entry["error"] == nil || int(entry["status"].(float64)) != singleCode {
				t.Fatalf("query %d: single failed with %d, batch entry = %v", i, singleCode, entry)
			}
			continue
		}
		delete(single, "elapsed_ms") // timing is the one legitimate difference
		a, _ := json.Marshal(single)
		b, _ := json.Marshal(entry)
		if string(a) != string(b) {
			t.Fatalf("query %d diverges:\nsingle: %s\nbatch:  %s", i, a, b)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	srv, _ := testServer(t, 4)
	if code, _ := post(t, srv, "/forecast/batch", "not json"); code != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", code)
	}
	if code, _ := post(t, srv, "/forecast/batch", `{"queries":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", code)
	}
	srv.batchMax = 2
	if code, body := post(t, srv, "/forecast/batch",
		`{"queries":[{"model":"Tree"},{"model":"Tree"},{"model":"Tree"}]}`); code != http.StatusBadRequest ||
		!strings.Contains(body["error"].(string), "limit") {
		t.Fatalf("oversized batch = %d %v, want 400", code, body)
	}
}

// TestGracefulShutdown: cancelling the serve context (SIGTERM in
// production) must stop accepting but finish the in-flight request —
// observed as a 200 on a request that was mid-handler when shutdown began.
func TestGracefulShutdown(t *testing.T) {
	srv, _ := testServer(t, 4)
	srv.drain = 5 * time.Second
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHookForecast = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.serve(ctx, ln, &strings.Builder{}) }()

	respDone := make(chan error, 1)
	var status int
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/forecast?model=Tree&t=30")
		if err == nil {
			status = resp.StatusCode
			resp.Body.Close()
		}
		respDone <- err
	}()

	<-entered // the request is inside the handler
	cancel()  // SIGTERM
	select {
	case err := <-serveDone:
		t.Fatalf("serve returned %v while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-respDone; err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200", status)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve = %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	// The listener is closed: new connections are refused.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
