// Command hotscen runs the adversarial scenario evaluation matrix: every
// selected model through every selected scenario pack, aggregated into a
// per-(model, scenario) metric matrix and written as a JSON artifact.
//
// Usage:
//
//	hotscen -list
//	hotscen -packs baseline,outage-wave -models Random,Average,Tree -o matrix.json
//	hotscen -packs all -diff BENCH_scenarios.json
//
// With -diff, the freshly computed matrix's schema (packs, models, cell
// structure) is compared against a committed baseline artifact; CI uses
// this to catch silent matrix-shape drift.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mltree"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/scenario/evalmatrix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotscen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("hotscen", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list built-in scenario packs and exit")
		packsFlag = fs.String("packs", "all", "comma-separated pack names, or \"all\"")
		models    = fs.String("models", "all", "comma-separated model kinds, or \"all\"")
		outPath   = fs.String("o", "", "output path for the matrix artifact (default: stdout)")
		diffPath  = fs.String("diff", "", "baseline artifact to compare the matrix schema against")
		sectors   = fs.Int("sectors", 200, "approximate sector count")
		weeks     = fs.Int("weeks", 10, "observation window in weeks")
		seed      = fs.Uint64("seed", 1, "random seed")
		tcount    = fs.Int("t", 2, "number of forecast days sampled from the feasible range")
		hsFlag    = fs.String("hs", "1,5", "comma-separated forecast horizons")
		w         = fs.Int("w", 7, "feature window in days")
		trainDays = fs.Int("train-days", 3, "training days per fit")
		trees     = fs.Int("trees", 4, "forest size")
		repeats   = fs.Int("repeats", 2, "random rankings per grid point (lift denominator)")
		workers   = fs.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		splitAlgo = fs.String("split-algo", "auto", "tree split algorithm: exact, hist or auto")
		metrics   = fs.String("metrics", "", "write the process metrics exposition to this path at exit (\"-\" = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics != "" {
		defer func() {
			if derr := obs.Default().Dump(*metrics); derr != nil && err == nil {
				err = fmt.Errorf("metrics dump: %w", derr)
			}
		}()
	}

	if *list {
		for _, p := range scenario.BuiltinPacks() {
			fmt.Fprintf(out, "%-16s %s\n", p.Name, p.Desc)
			for _, ov := range p.Overlays {
				fmt.Fprintf(out, "    overlay %-16s labels: %s\n", ov.Name(), ov.LabelEffect())
			}
		}
		return nil
	}

	packs, err := parsePacks(*packsFlag)
	if err != nil {
		return err
	}
	kinds, err := parseModels(*models)
	if err != nil {
		return err
	}
	hs, err := parseInts(*hsFlag)
	if err != nil {
		return fmt.Errorf("bad -hs: %w", err)
	}
	algo, err := mltree.ParseSplitAlgo(*splitAlgo)
	if err != nil {
		return err
	}

	cfg := evalmatrix.Config{
		Packs:         packs,
		Models:        kinds,
		Sectors:       *sectors,
		Weeks:         *weeks,
		Seed:          *seed,
		TCount:        *tcount,
		Hs:            hs,
		W:             *w,
		TrainDays:     *trainDays,
		ForestTrees:   *trees,
		RandomRepeats: *repeats,
		Workers:       *workers,
		SplitAlgo:     algo,
	}
	m, err := evalmatrix.Run(cfg)
	if err != nil {
		return err
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: %d packs x %d models (%d cells)\n",
			*outPath, len(m.Packs), len(m.Models), len(m.Cells))
	} else if err := m.WriteJSON(out); err != nil {
		return err
	}

	if *diffPath != "" {
		base, err := evalmatrix.ReadFile(*diffPath)
		if err != nil {
			return err
		}
		if err := evalmatrix.CompareSchema(m, base); err != nil {
			return fmt.Errorf("schema drift against %s: %w", *diffPath, err)
		}
		fmt.Fprintf(out, "schema matches %s\n", *diffPath)
	}
	return nil
}

// parsePacks resolves the -packs selector.
func parsePacks(spec string) ([]scenario.Pack, error) {
	if spec == "all" || spec == "" {
		return scenario.BuiltinPacks(), nil
	}
	var packs []scenario.Pack
	for _, name := range strings.Split(spec, ",") {
		p, err := scenario.PackByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		packs = append(packs, p)
	}
	return packs, nil
}

// parseModels resolves the -models selector against the model-kind names
// of core (e.g. "Random", "RF-F1").
func parseModels(spec string) ([]core.ModelKind, error) {
	if spec == "all" || spec == "" {
		return evalmatrix.AllModelKinds(), nil
	}
	known := map[string]core.ModelKind{}
	for _, k := range evalmatrix.AllModelKinds() {
		known[string(k)] = k
	}
	var kinds []core.ModelKind
	for _, name := range strings.Split(spec, ",") {
		k, ok := known[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown model %q", name)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// parseInts parses a comma-separated integer list.
func parseInts(spec string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
