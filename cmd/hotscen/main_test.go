package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario/evalmatrix"
)

// tinyArgs keeps the smoke runs to a couple of seconds.
func tinyArgs(extra ...string) []string {
	args := []string{
		"-packs", "baseline,missing-storm",
		"-models", "Random,Average",
		"-sectors", "100", "-weeks", "8", "-t", "1", "-hs", "1",
	}
	return append(args, extra...)
}

// TestList prints the pack catalogue.
func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "flash-crowd", "outage-wave", "missing-storm", "seasonal-drift", "load-shift", "perfect-storm"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestMatrixArtifact writes a matrix, reloads it, and passes a -diff run
// against it.
func TestMatrixArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	var out bytes.Buffer
	if err := run(tinyArgs("-o", path), &out); err != nil {
		t.Fatal(err)
	}
	m, err := evalmatrix.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Packs) != 2 || len(m.Models) != 2 || len(m.Cells) != 4 {
		t.Fatalf("unexpected matrix shape: %d packs, %d models, %d cells", len(m.Packs), len(m.Models), len(m.Cells))
	}

	out.Reset()
	if err := run(tinyArgs("-o", filepath.Join(t.TempDir(), "again.json"), "-diff", path), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "schema matches") {
		t.Fatalf("diff run did not confirm schema: %s", out.String())
	}
}

// TestDiffCatchesDrift: a baseline with a different pack set must fail the
// -diff run.
func TestDiffCatchesDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := run(tinyArgs("-o", path), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	m, err := evalmatrix.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Packs = m.Packs[:1]
	drifted := filepath.Join(t.TempDir(), "drifted.json")
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(drifted, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(tinyArgs("-diff", drifted, "-o", filepath.Join(t.TempDir(), "out.json")), &bytes.Buffer{}); err == nil {
		t.Fatal("schema drift not detected")
	}
}

// TestStdoutAndBadFlags covers the stdout path and flag validation.
func TestStdoutAndBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(tinyArgs(), &out); err != nil {
		t.Fatal(err)
	}
	var m evalmatrix.Matrix
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("stdout is not a matrix artifact: %v", err)
	}
	for _, bad := range [][]string{
		{"-packs", "no-such-pack"},
		{"-models", "NoSuchModel"},
		{"-hs", "one"},
		{"-split-algo", "fancy"},
	} {
		if err := run(bad, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}
