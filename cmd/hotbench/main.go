// Command hotbench reproduces every table and figure of the paper's
// evaluation in one run and prints an EXPERIMENTS-style report: the
// descriptive analyses (Figs. 1-8, Table II), the forecasting study
// (Figs. 9-14, Sec. V-A temporal stability) and the feature-importance
// maps (Figs. 15-16).
//
// Usage:
//
//	hotbench -scale tiny      # seconds; smoke only
//	hotbench -scale small     # minutes
//	hotbench -scale default   # tens of minutes
//	hotbench -scale full      # paper-sized t grid; hours
//	hotbench -skip-forecast   # descriptive analyses only
//	hotbench -workers 8       # bound the parallel sweep engine
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/forecast"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// section is one report unit: a named experiment that renders to text.
type section struct {
	name string
	f    func() (string, error)
}

// run is the testable entry point: it prepares the environment at the
// requested scale and streams every experiment's report to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotbench", flag.ContinueOnError)
	var (
		scaleName    = fs.String("scale", "small", "tiny | small | default | full")
		seed         = fs.Uint64("seed", 1, "random seed")
		workers      = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		skipForecast = fs.Bool("skip-forecast", false, "run only the descriptive analyses")
		skipImpute   = fs.Bool("skip-impute", false, "skip the Fig 5 autoencoder comparison")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.TinyScale()
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed
	scale.Workers = *workers

	start := time.Now()
	env, err := experiments.Prepare(scale)
	if err != nil {
		return err
	}
	effective := scale.Workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(out, "prepared %d sectors x %d days (seed %d, %d discarded, %d sweep workers) in %v\n\n",
		env.Ctx.Sectors(), env.Ctx.Days(), *seed, env.Discarded, effective, time.Since(start).Round(time.Millisecond))

	runSection := func(s section) error {
		t0 := time.Now()
		res, err := s.f()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(out, res)
		fmt.Fprintf(out, "[%s took %v]\n\n", s.name, time.Since(t0).Round(time.Millisecond))
		return nil
	}

	descriptive := []section{
		{"Fig 1", func() (string, error) { return experiments.Fig01KPIExamples(env).Format(), nil }},
		{"Fig 2", func() (string, error) { return experiments.Fig02ScoreAndLabel(env).Format(), nil }},
		{"Fig 3", func() (string, error) { return experiments.Fig03LabelRaster(env).Format(), nil }},
		{"Fig 4", func() (string, error) { return experiments.Fig04ScoreHistogram(env).Format(), nil }},
	}
	if !*skipImpute {
		descriptive = append(descriptive, section{"Fig 5", func() (string, error) {
			r, err := experiments.Fig05Imputation(env)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}})
	}
	descriptive = append(descriptive, []section{
		{"Fig 6", func() (string, error) { return experiments.Fig06HotSpotHistograms(env).Format(), nil }},
		{"Fig 7", func() (string, error) { return experiments.Fig07ConsecutiveRuns(env).Format(), nil }},
		{"Table II", func() (string, error) { return experiments.Tab02WeeklyPatterns(env).Format(), nil }},
		{"Fig 8", func() (string, error) { return experiments.Fig08SpatialCorrelation(env).Format(), nil }},
	}...)
	for _, s := range descriptive {
		if err := runSection(s); err != nil {
			return err
		}
	}

	if *skipForecast {
		return nil
	}

	var hot *experiments.HorizonResult
	forecasting := []section{
		{"Sec V-A", func() (string, error) {
			r, err := experiments.RunStabilityExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Figs 9-10", func() (string, error) {
			r, err := experiments.RunHorizonExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			hot = r
			return r.Format(), nil
		}},
		{"Figs 11-12", func() (string, error) {
			r, err := experiments.RunHorizonExperiment(env, forecast.BecomeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 13", func() (string, error) {
			r, err := experiments.RunWindowExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 14", func() (string, error) {
			r, err := experiments.RunWindowExperiment(env, forecast.BecomeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 15", func() (string, error) {
			r, err := experiments.RunImportanceExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 16", func() (string, error) {
			r, err := experiments.RunImportanceExperiment(env, forecast.BecomeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"PR curves", func() (string, error) {
			r, err := experiments.RunPRCurves(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Ablations", func() (string, error) {
			bw, err := experiments.RunAblationBalancedWeights(env)
			if err != nil {
				return "", err
			}
			sp, err := experiments.RunAblationSpatial(env)
			if err != nil {
				return "", err
			}
			return bw.Format() + "\n" + sp.Format() + "\n", nil
		}},
	}
	for _, s := range forecasting {
		if err := runSection(s); err != nil {
			return err
		}
	}

	if hot != nil {
		fmt.Fprintf(out, "headline: RF-F1 vs Average on hot spots: %+.0f%% (paper: +14%%)\n",
			hot.MeanDelta("RF-F1", nil))
	}
	fmt.Fprintf(out, "total runtime %v\n", time.Since(start).Round(time.Second))
	return nil
}
