// Command hotbench reproduces every table and figure of the paper's
// evaluation in one run and prints an EXPERIMENTS-style report: the
// descriptive analyses (Figs. 1-8, Table II), the forecasting study
// (Figs. 9-14, Sec. V-A temporal stability) and the feature-importance
// maps (Figs. 15-16).
//
// Usage:
//
//	hotbench -scale small     # minutes
//	hotbench -scale default   # tens of minutes
//	hotbench -scale full      # paper-sized t grid; hours
//	hotbench -skip-forecast   # descriptive analyses only
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/forecast"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotbench: ")
	var (
		scaleName    = flag.String("scale", "small", "small | default | full")
		seed         = flag.Uint64("seed", 1, "random seed")
		skipForecast = flag.Bool("skip-forecast", false, "run only the descriptive analyses")
		skipImpute   = flag.Bool("skip-impute", false, "skip the Fig 5 autoencoder comparison")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	case "full":
		scale = experiments.FullScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed

	start := time.Now()
	env, err := experiments.Prepare(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared %d sectors x %d days (seed %d, %d discarded) in %v\n\n",
		env.Ctx.Sectors(), env.Ctx.Days(), *seed, env.Discarded, time.Since(start).Round(time.Millisecond))

	section := func(name string, f func() (string, error)) {
		t0 := time.Now()
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	section("Fig 1", func() (string, error) { return experiments.Fig01KPIExamples(env).Format(), nil })
	section("Fig 2", func() (string, error) { return experiments.Fig02ScoreAndLabel(env).Format(), nil })
	section("Fig 3", func() (string, error) { return experiments.Fig03LabelRaster(env).Format(), nil })
	section("Fig 4", func() (string, error) { return experiments.Fig04ScoreHistogram(env).Format(), nil })
	if !*skipImpute {
		section("Fig 5", func() (string, error) {
			r, err := experiments.Fig05Imputation(env)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	section("Fig 6", func() (string, error) { return experiments.Fig06HotSpotHistograms(env).Format(), nil })
	section("Fig 7", func() (string, error) { return experiments.Fig07ConsecutiveRuns(env).Format(), nil })
	section("Table II", func() (string, error) { return experiments.Tab02WeeklyPatterns(env).Format(), nil })
	section("Fig 8", func() (string, error) { return experiments.Fig08SpatialCorrelation(env).Format(), nil })

	if *skipForecast {
		return
	}

	section("Sec V-A", func() (string, error) {
		r, err := experiments.RunStabilityExperiment(env, forecast.BeHot)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	var hot *experiments.HorizonResult
	section("Figs 9-10", func() (string, error) {
		r, err := experiments.RunHorizonExperiment(env, forecast.BeHot)
		if err != nil {
			return "", err
		}
		hot = r
		return r.Format(), nil
	})
	section("Figs 11-12", func() (string, error) {
		r, err := experiments.RunHorizonExperiment(env, forecast.BecomeHot)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	section("Fig 13", func() (string, error) {
		r, err := experiments.RunWindowExperiment(env, forecast.BeHot)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	section("Fig 14", func() (string, error) {
		r, err := experiments.RunWindowExperiment(env, forecast.BecomeHot)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	section("Fig 15", func() (string, error) {
		r, err := experiments.RunImportanceExperiment(env, forecast.BeHot)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	section("Fig 16", func() (string, error) {
		r, err := experiments.RunImportanceExperiment(env, forecast.BecomeHot)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})

	section("PR curves", func() (string, error) {
		r, err := experiments.RunPRCurves(env, forecast.BeHot)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	section("Ablations", func() (string, error) {
		var b string
		bw, err := experiments.RunAblationBalancedWeights(env)
		if err != nil {
			return "", err
		}
		b += bw.Format() + "\n"
		sp, err := experiments.RunAblationSpatial(env)
		if err != nil {
			return "", err
		}
		b += sp.Format() + "\n"
		return b, nil
	})

	if hot != nil {
		fmt.Printf("headline: RF-F1 vs Average on hot spots: %+.0f%% (paper: +14%%)\n",
			hot.MeanDelta("RF-F1", nil))
	}
	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Second))
}
