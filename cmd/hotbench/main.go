// Command hotbench reproduces every table and figure of the paper's
// evaluation in one run and prints an EXPERIMENTS-style report: the
// descriptive analyses (Figs. 1-8, Table II), the forecasting study
// (Figs. 9-14, Sec. V-A temporal stability) and the feature-importance
// maps (Figs. 15-16).
//
// Usage:
//
//	hotbench -scale tiny      # seconds; smoke only
//	hotbench -scale small     # minutes
//	hotbench -scale default   # tens of minutes
//	hotbench -scale full      # paper-sized t grid; hours
//	hotbench -skip-forecast   # descriptive analyses only
//	hotbench -workers 8       # bound the parallel sweep engine
//	hotbench -cache-mb 512    # feature-matrix cache budget (0 disables)
//	hotbench -split-algo hist # histogram-binned tree training (exact | hist | auto)
//	hotbench -csv sweep.csv   # stream the Table III sweep to CSV live
//	hotbench -cpuprofile cpu.pprof -memprofile mem.pprof   # profile the run
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/mltree"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// section is one report unit: a named experiment that renders to text.
type section struct {
	name string
	f    func() (string, error)
}

// run is the testable entry point: it prepares the environment at the
// requested scale and streams every experiment's report to out.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("hotbench", flag.ContinueOnError)
	var (
		scaleName    = fs.String("scale", "small", "tiny | small | default | full")
		seed         = fs.Uint64("seed", 1, "random seed")
		workers      = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		cacheMB      = fs.Int("cache-mb", 256, "feature-matrix cache budget in MiB (0 disables caching)")
		splitAlgo    = fs.String("split-algo", "auto", "tree-training split search: exact | hist | auto")
		csvPath      = fs.String("csv", "", "stream the scale's full model sweep to this CSV file as records complete")
		skipForecast = fs.Bool("skip-forecast", false, "run only the descriptive analyses")
		skipImpute   = fs.Bool("skip-impute", false, "skip the Fig 5 autoencoder comparison")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile to this file at exit")
		metricsOut   = fs.String("metrics", "", "write the process metrics exposition to this path at exit (\"-\" = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metricsOut != "" {
		defer func() {
			if derr := obs.Default().Dump(*metricsOut); derr != nil && err == nil {
				err = fmt.Errorf("metrics dump: %w", derr)
			}
		}()
	}

	// Profiling hooks for perf work on the fit/predict hot path: the CPU
	// profile covers the whole run, the heap profile snapshots live
	// allocations (caches included) after a final GC.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("writing heap profile: %v", err)
			}
			f.Close()
		}()
	}

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.TinyScale()
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed
	scale.Workers = *workers
	scale.CacheBytes = forecast.CacheBytesMB(*cacheMB)
	algo, err := mltree.ParseSplitAlgo(*splitAlgo)
	if err != nil {
		return err
	}
	scale.SplitAlgo = algo

	start := time.Now()
	env, err := experiments.Prepare(scale)
	if err != nil {
		return err
	}
	effective := scale.Workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(out, "prepared %d sectors x %d days (seed %d, %d discarded, %d sweep workers) in %v\n\n",
		env.Ctx.Sectors(), env.Ctx.Days(), *seed, env.Discarded, effective, time.Since(start).Round(time.Millisecond))

	runSection := func(s section) error {
		t0 := time.Now()
		res, err := s.f()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(out, res)
		fmt.Fprintf(out, "[%s took %v]\n\n", s.name, time.Since(t0).Round(time.Millisecond))
		return nil
	}

	descriptive := []section{
		{"Fig 1", func() (string, error) { return experiments.Fig01KPIExamples(env).Format(), nil }},
		{"Fig 2", func() (string, error) { return experiments.Fig02ScoreAndLabel(env).Format(), nil }},
		{"Fig 3", func() (string, error) { return experiments.Fig03LabelRaster(env).Format(), nil }},
		{"Fig 4", func() (string, error) { return experiments.Fig04ScoreHistogram(env).Format(), nil }},
	}
	if !*skipImpute {
		descriptive = append(descriptive, section{"Fig 5", func() (string, error) {
			r, err := experiments.Fig05Imputation(env)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}})
	}
	descriptive = append(descriptive, []section{
		{"Fig 6", func() (string, error) { return experiments.Fig06HotSpotHistograms(env).Format(), nil }},
		{"Fig 7", func() (string, error) { return experiments.Fig07ConsecutiveRuns(env).Format(), nil }},
		{"Table II", func() (string, error) { return experiments.Tab02WeeklyPatterns(env).Format(), nil }},
		{"Fig 8", func() (string, error) { return experiments.Fig08SpatialCorrelation(env).Format(), nil }},
	}...)
	for _, s := range descriptive {
		if err := runSection(s); err != nil {
			return err
		}
	}

	if *csvPath != "" {
		if err := streamCSV(env, *csvPath, out); err != nil {
			return fmt.Errorf("csv sweep: %w", err)
		}
	}

	var hot *experiments.HorizonResult
	forecasting := []section{
		{"Sec V-A", func() (string, error) {
			r, err := experiments.RunStabilityExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Figs 9-10", func() (string, error) {
			r, err := experiments.RunHorizonExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			hot = r
			return r.Format(), nil
		}},
		{"Figs 11-12", func() (string, error) {
			r, err := experiments.RunHorizonExperiment(env, forecast.BecomeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 13", func() (string, error) {
			r, err := experiments.RunWindowExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 14", func() (string, error) {
			r, err := experiments.RunWindowExperiment(env, forecast.BecomeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 15", func() (string, error) {
			r, err := experiments.RunImportanceExperiment(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Fig 16", func() (string, error) {
			r, err := experiments.RunImportanceExperiment(env, forecast.BecomeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"PR curves", func() (string, error) {
			r, err := experiments.RunPRCurves(env, forecast.BeHot)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"Ablations", func() (string, error) {
			bw, err := experiments.RunAblationBalancedWeights(env)
			if err != nil {
				return "", err
			}
			sp, err := experiments.RunAblationSpatial(env)
			if err != nil {
				return "", err
			}
			return bw.Format() + "\n" + sp.Format() + "\n", nil
		}},
	}
	if !*skipForecast {
		for _, s := range forecasting {
			if err := runSection(s); err != nil {
				return err
			}
		}
		if hot != nil {
			fmt.Fprintf(out, "headline: RF-F1 vs Average on hot spots: %+.0f%% (paper: +14%%)\n",
				hot.MeanDelta("RF-F1", nil))
		}
	}

	// Any sweep activity (forecast sections or the -csv sweep) ran against
	// the shared caches; summarise their effectiveness. Trained-model hits
	// are fits the run never repeated — experiments with overlapping grids
	// (horizon, stability, PR curves) share artifacts through the cache.
	if cache := env.Ctx.FeatureCache(); cache != nil && (!*skipForecast || *csvPath != "") {
		s := cache.Stats()
		fmt.Fprintf(out, "feature cache: %d hits, %d misses, %d evictions, %d matrices / %.1f MiB resident (budget %d MiB)\n",
			s.Hits, s.Misses, s.Evictions, s.Entries, float64(s.Bytes)/(1<<20), s.MaxBytes>>20)
	}
	if cache := env.Ctx.ModelCache(); cache != nil && (!*skipForecast || *csvPath != "") {
		s := cache.Stats()
		fmt.Fprintf(out, "model cache: %d hits, %d misses, %d evictions, %d artifacts / %.1f MiB resident (budget %d MiB)\n",
			s.Hits, s.Misses, s.Evictions, s.Entries, float64(s.Bytes)/(1<<20), s.MaxBytes>>20)
	}
	fmt.Fprintf(out, "total runtime %v\n", time.Since(start).Round(time.Second))
	return nil
}

// streamCSV runs the scale's full Table III model sweep once through the
// streaming engine, writing every record to path the moment its grid point
// completes (so a killed run keeps everything finished so far) and
// printing periodic per-point progress.
func streamCSV(env *experiments.Env, path string, out io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(forecast.CSVHeader()); err != nil {
		return err
	}
	cfg := forecast.SweepConfig{
		Models:        forecast.AllModels(),
		Target:        forecast.BeHot,
		Ts:            env.Scale.Ts(),
		Hs:            env.Scale.Hs,
		Ws:            env.Scale.Ws,
		RandomRepeats: env.Scale.RandomRepeats,
		Workers:       env.Scale.Workers,
	}
	total := len(cfg.Ts) * len(cfg.Hs) * len(cfg.Ws) * len(cfg.Models)
	step := total / 20
	if step < 1 {
		step = 1
	}
	n, valid := 0, 0
	start := time.Now()
	err = forecast.SweepStream(env.Ctx, cfg, func(rec forecast.Record) error {
		n++
		if !math.IsNaN(rec.Psi) {
			valid++
		}
		if err := w.Write(rec.CSVRow()); err != nil {
			return err
		}
		w.Flush() // live emission: every record lands on disk as it streams
		if err := w.Error(); err != nil {
			return err
		}
		if n%step == 0 || n == total {
			fmt.Fprintf(out, "csv: %d/%d records (%.0f%%) in %v\n",
				n, total, 100*float64(n)/float64(total), time.Since(start).Round(time.Millisecond))
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "csv: wrote %d records (%d evaluable) to %s in %v\n\n",
		n, valid, path, time.Since(start).Round(time.Millisecond))
	return nil
}
