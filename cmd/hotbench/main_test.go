package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunDescriptiveSmoke runs the descriptive analyses at tiny scale and
// asserts every section renders.
func TestRunDescriptiveSmoke(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-scale", "tiny", "-skip-forecast", "-skip-impute", "-workers", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "prepared ") || !strings.Contains(got, "sweep workers") {
		t.Fatalf("missing preparation header:\n%s", got)
	}
	for _, section := range []string{
		"Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 6", "Fig 7", "Table II", "Fig 8",
	} {
		if !strings.Contains(got, "["+section+" took ") {
			t.Fatalf("section %q missing from report", section)
		}
	}
	if strings.Contains(got, "[Fig 5 took ") {
		t.Fatal("-skip-impute did not skip Fig 5")
	}
	if strings.Contains(got, "Figs 9-10") {
		t.Fatal("-skip-forecast did not skip the forecasting study")
	}
}

// TestRunForecastSmoke exercises the full forecasting path (sweeps,
// stability, importance, ablations) at tiny scale on the parallel engine.
func TestRunForecastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny-scale bench takes tens of seconds")
	}
	var buf strings.Builder
	err := run([]string{"-scale", "tiny", "-skip-impute", "-workers", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, section := range []string{"Sec V-A", "Figs 9-10", "Fig 13", "Fig 15", "PR curves", "Ablations"} {
		if !strings.Contains(got, "["+section+" took ") {
			t.Fatalf("section %q missing from report", section)
		}
	}
	if !strings.Contains(got, "headline: RF-F1 vs Average") {
		t.Fatalf("missing headline line:\n%s", got)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

// TestRunCSVStream drives the -csv streaming sweep at tiny scale: every
// grid point of the scale's (t, h, w) grid times all eight models must
// land in the file, with progress and a summary line on the report.
func TestRunCSVStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny-scale model sweep takes tens of seconds")
	}
	path := filepath.Join(t.TempDir(), "sweep.csv")
	var buf strings.Builder
	err := run([]string{"-scale", "tiny", "-skip-forecast", "-skip-impute", "-workers", "4", "-csv", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "csv: wrote ") {
		t.Fatalf("missing csv summary line:\n%s", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "model,target,t,h,w,psi,psi_random,lift,positives" {
		t.Fatalf("bad header %q", lines[0])
	}
	// Tiny scale: 2 ts x 2 hs x 2 ws x 8 models.
	if want := 2*2*2*8 + 1; len(lines) != want {
		t.Fatalf("csv has %d lines, want %d", len(lines), want)
	}
	for _, model := range []string{"Random", "Average", "RF-F1", "RF-F2"} {
		if !strings.Contains(string(data), model+",hot-spot,") {
			t.Fatalf("model %s missing from csv", model)
		}
	}
}

// TestRunCSVBadPath: an unwritable -csv path must surface as an error, not
// a silent no-op.
func TestRunCSVBadPath(t *testing.T) {
	err := run([]string{"-scale", "tiny", "-skip-forecast", "-skip-impute",
		"-csv", filepath.Join(t.TempDir(), "no-such-dir", "x.csv")}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "csv sweep") {
		t.Fatalf("unwritable csv path accepted (err=%v)", err)
	}
}

// TestRunProfiles: -cpuprofile/-memprofile write non-empty pprof files so
// perf work on the fit/predict path is measurable locally.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var buf strings.Builder
	err := run([]string{"-scale", "tiny", "-skip-forecast", "-skip-impute", "-workers", "2",
		"-cpuprofile", cpu, "-memprofile", mem}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// An unwritable profile path is an error up front, not a lost profile.
	err = run([]string{"-scale", "tiny", "-skip-forecast", "-skip-impute",
		"-cpuprofile", filepath.Join(dir, "no-such-dir", "cpu.pprof")}, &strings.Builder{})
	if err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
}
