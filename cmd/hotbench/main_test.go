package main

import (
	"strings"
	"testing"
)

// TestRunDescriptiveSmoke runs the descriptive analyses at tiny scale and
// asserts every section renders.
func TestRunDescriptiveSmoke(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-scale", "tiny", "-skip-forecast", "-skip-impute", "-workers", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "prepared ") || !strings.Contains(got, "sweep workers") {
		t.Fatalf("missing preparation header:\n%s", got)
	}
	for _, section := range []string{
		"Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 6", "Fig 7", "Table II", "Fig 8",
	} {
		if !strings.Contains(got, "["+section+" took ") {
			t.Fatalf("section %q missing from report", section)
		}
	}
	if strings.Contains(got, "[Fig 5 took ") {
		t.Fatal("-skip-impute did not skip Fig 5")
	}
	if strings.Contains(got, "Figs 9-10") {
		t.Fatal("-skip-forecast did not skip the forecasting study")
	}
}

// TestRunForecastSmoke exercises the full forecasting path (sweeps,
// stability, importance, ablations) at tiny scale on the parallel engine.
func TestRunForecastSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny-scale bench takes tens of seconds")
	}
	var buf strings.Builder
	err := run([]string{"-scale", "tiny", "-skip-impute", "-workers", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, section := range []string{"Sec V-A", "Figs 9-10", "Fig 13", "Fig 15", "PR curves", "Ablations"} {
		if !strings.Contains(got, "["+section+" took ") {
			t.Fatalf("section %q missing from report", section)
		}
	}
	if !strings.Contains(got, "headline: RF-F1 vs Average") {
		t.Fatalf("missing headline line:\n%s", got)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
