// Command hotblast is the serving load generator: it drives a running
// hotserve at a configured concurrency, measures end-to-end request
// latency, and distills the run into the same benchjson document shape CI
// tracks for training benches — so serving performance has a committed,
// machine-readable trajectory (BENCH_serve.json) next to the training one.
//
// Usage:
//
//	hotserve -registry ./models -addr :8080 &
//	hotblast -base http://localhost:8080 -duration 10s -concurrency 8 -o BENCH_serve.json
//	hotblast -base http://localhost:8080 -diff BENCH_serve.json   # CI: schema-guard the baseline
//
// hotblast discovers the serving inventory from /healthz and drives two
// phases against it: ServeForecast (single GET /forecast calls, every
// artifact round-robin) and ServeForecastBatch (POST /forecast/batch with
// -batch queries per request). Each phase reports p50/p90/p99/p999
// latency in milliseconds, req/s, forecasts/s (query evaluations — a
// batch of k counts k), the error count, and server-p99-ms (the server's
// own request-latency p99 over the phase window, read from /metrics).
// Every query is warmed once before timing so the measured window is
// steady-state serving, not first-touch feature-matrix builds.
//
// hotblast scrapes GET /metrics before and after each phase and
// cross-checks the server's request and forecast counters against its own
// client-side counts: a request the server never logged, or a forecast
// counted on only one side, fails the run. The load generator doubles as
// an end-to-end audit of the serving metrics.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/obs"
	"repro/internal/retry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotblast: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotblast", flag.ContinueOnError)
	var (
		base     = fs.String("base", "http://localhost:8080", "base URL of the hotserve instance to drive")
		duration = fs.Duration("duration", 10*time.Second, "timed window per phase")
		conc     = fs.Int("concurrency", 8, "concurrent load workers per phase")
		batch    = fs.Int("batch", 16, "queries per /forecast/batch request in the batch phase (0 skips it)")
		oPath    = fs.String("o", "", "write the benchjson report to this path (empty = stdout only)")
		diff     = fs.String("diff", "", "baseline BENCH_serve.json to schema-compare against (fails on vanished series)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *conc < 1 || *duration <= 0 {
		return fmt.Errorf("need -concurrency >= 1 and -duration > 0")
	}
	client := &http.Client{Timeout: *timeout}
	// Discovery retries transient connection failures: hotblast is routinely
	// started right behind hotserve (CI smokes, operator scripts), and a
	// connection refused while the server finishes binding is a race, not a
	// fault. Structural failures (bad body, unhealthy status) fail at once.
	var queries []url.Values
	if err := retry.Default().Do(context.Background(), func() error {
		var derr error
		queries, derr = discover(client, *base)
		return derr
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "driving %s: %d artifact(s), %d workers, %v per phase\n",
		*base, len(queries), *conc, *duration)
	if err := warm(client, *base, queries); err != nil {
		return err
	}

	report := &benchfmt.Report{}
	before, err := scrapeMetrics(client, *base)
	if err != nil {
		return err
	}
	single := runPhase("ServeForecast", *conc, *duration, func(iter int) (int, error) {
		return 1, getOK(client, *base+"/forecast?"+queries[iter%len(queries)].Encode())
	})
	if err := single.check(); err != nil {
		return err
	}
	after, err := scrapeMetrics(client, *base)
	if err != nil {
		return err
	}
	if err := single.audit(before, after, "/forecast"); err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, single.entry(*conc))
	single.print(out)

	if *batch > 0 {
		body := batchBody(queries, *batch)
		before = after // the post-single scrape is the batch phase's baseline
		bp := runPhase("ServeForecastBatch", *conc, *duration, func(iter int) (int, error) {
			return postCount(client, *base+"/forecast/batch", body)
		})
		if err := bp.check(); err != nil {
			return err
		}
		if after, err = scrapeMetrics(client, *base); err != nil {
			return err
		}
		if err := bp.audit(before, after, "/forecast/batch"); err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, bp.entry(*conc))
		bp.print(out)
	}

	if *oPath != "" {
		if err := benchfmt.WriteFile(*oPath, report); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *oPath)
	} else {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	if *diff != "" {
		baseline, err := benchfmt.ReadFile(*diff)
		if err != nil {
			return err
		}
		if err := benchfmt.CompareSchema(report, baseline); err != nil {
			return err
		}
		fmt.Fprintf(out, "schema matches baseline %s\n", *diff)
	}
	return nil
}

// discover reads /healthz and turns the active artifact inventory into
// fully-selective /forecast query strings (model+target+h+w pins exactly
// one artifact, so no request is rejected as ambiguous).
func discover(client *http.Client, base string) ([]url.Values, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("hotblast: %s unreachable: %w", base, err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Models []struct {
			Model  string `json:"model"`
			Target string `json:"target"`
			H      int    `json:"h"`
			W      int    `json:"w"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return nil, fmt.Errorf("hotblast: bad /healthz body: %w", err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		return nil, fmt.Errorf("hotblast: server unhealthy: HTTP %d status %q", resp.StatusCode, health.Status)
	}
	var queries []url.Values
	for _, m := range health.Models {
		target := "hot"
		if m.Target == "become-hot-spot" {
			target = "become"
		}
		queries = append(queries, url.Values{
			"model":  {m.Model},
			"target": {target},
			"h":      {strconv.Itoa(m.H)},
			"w":      {strconv.Itoa(m.W)},
		})
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("hotblast: server has no artifacts to drive")
	}
	return queries, nil
}

// warm issues every query once, sequentially, so first-touch work
// (feature-matrix builds behind the server's cache) happens before any
// timed phase.
func warm(client *http.Client, base string, queries []url.Values) error {
	for _, q := range queries {
		if err := getOK(client, base+"/forecast?"+q.Encode()); err != nil {
			return fmt.Errorf("hotblast: warmup: %w", err)
		}
	}
	return nil
}

// batchBody builds one /forecast/batch request body cycling through the
// discovered artifacts.
func batchBody(queries []url.Values, k int) []byte {
	type bq struct {
		Model  string `json:"model"`
		Target string `json:"target"`
		H      int    `json:"h"`
		W      int    `json:"w"`
	}
	var req struct {
		Queries []bq `json:"queries"`
	}
	for i := 0; i < k; i++ {
		q := queries[i%len(queries)]
		h, _ := strconv.Atoi(q.Get("h"))
		w, _ := strconv.Atoi(q.Get("w"))
		req.Queries = append(req.Queries, bq{Model: q.Get("model"), Target: q.Get("target"), H: h, W: w})
	}
	body, _ := json.Marshal(req)
	return body
}

func getOK(client *http.Client, u string) error {
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	return drainOK(resp)
}

// postCount posts a batch request and returns how many of its queries
// evaluated successfully — a 200 batch response carries inline per-query
// errors, so the body must be parsed, not just drained.
func postCount(client *http.Client, u string, body []byte) (int, error) {
	resp, err := client.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var br struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return 0, fmt.Errorf("bad batch response: %w", err)
	}
	n := 0
	for _, r := range br.Results {
		if r.Error == "" {
			n++
		}
	}
	return n, nil
}

// scrapeMetrics fetches and parses GET /metrics.
func scrapeMetrics(client *http.Client, base string) (obs.Scrape, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("hotblast: /metrics unreachable: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("hotblast: /metrics: HTTP %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("hotblast: reading /metrics: %w", err)
	}
	sc, err := obs.ParseText(string(text))
	if err != nil {
		return nil, fmt.Errorf("hotblast: %w", err)
	}
	return sc, nil
}

// drainOK consumes the body (connection reuse) and maps non-200 to an
// error.
func drainOK(resp *http.Response) error {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// phaseResult is one timed load phase.
type phaseResult struct {
	name        string
	elapsed     time.Duration
	lats        []time.Duration // successful requests only, unsorted
	forecasts   int64
	errors      int64
	retries     int64   // transient-failure re-issues absorbed by backoff
	serverP99ms float64 // server-side request p99 over the phase, from /metrics
}

// runPhase fans issue across conc workers until the duration elapses.
// issue returns how many forecasts (query evaluations) the request
// produced; its latency is recorded only on success. Transient transport
// failures (a reset connection, an accept-queue race) are retried with
// jittered backoff and counted in retries rather than errors — the server
// never saw those attempts, so they must not unbalance the counter audit;
// a request's recorded latency includes any backoff it absorbed. HTTP-level
// failures (sheds, bad requests) are never retried: the server counted
// them, and a load generator's job is to report sheds, not mask them.
func runPhase(name string, conc int, duration time.Duration, issue func(iter int) (int, error)) *phaseResult {
	res := &phaseResult{name: name}
	var forecasts, errors, retries atomic.Int64
	pol := retry.Default()
	pol.OnRetry = func(attempt int, err error, delay time.Duration) { retries.Add(1) }
	perWorker := make([][]time.Duration, conc)
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lats []time.Duration
			for iter := w; time.Now().Before(deadline); iter++ {
				reqStart := time.Now()
				var nf int
				err := pol.Do(context.Background(), func() error {
					var ierr error
					nf, ierr = issue(iter)
					return ierr
				})
				if err != nil {
					errors.Add(1)
					continue
				}
				lats = append(lats, time.Since(reqStart))
				forecasts.Add(int64(nf))
			}
			perWorker[w] = lats
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	for _, lats := range perWorker {
		res.lats = append(res.lats, lats...)
	}
	res.forecasts = forecasts.Load()
	res.errors = errors.Load()
	res.retries = retries.Load()
	return res
}

// check fails a phase in which nothing succeeded — a load run against a
// broken server must not distill into an all-zero report.
func (r *phaseResult) check() error {
	if len(r.lats) == 0 {
		return fmt.Errorf("hotblast: %s: no successful requests (%d errors)", r.name, r.errors)
	}
	return nil
}

// audit cross-checks the server's own counters (scraped from /metrics
// before and after the phase) against the client-side view, and extracts
// the server-side request p99 for the report. Any disagreement — a
// request the server never counted, or a forecast evaluation only one
// side saw — fails the run: the counters are part of the serving
// contract, not decoration.
func (r *phaseResult) audit(before, after obs.Scrape, route string) error {
	rl := obs.Label{Key: "route", Value: route}
	reqDelta := after.Counter("hotserve_requests_total", rl) - before.Counter("hotserve_requests_total", rl)
	attempts := uint64(len(r.lats)) + uint64(r.errors)
	if reqDelta != attempts {
		return fmt.Errorf("hotblast: %s: server counted %d %s requests, client issued %d",
			r.name, reqDelta, route, attempts)
	}
	fcDelta := after.Counter("hotserve_forecasts_total") - before.Counter("hotserve_forecasts_total")
	if fcDelta != uint64(r.forecasts) {
		return fmt.Errorf("hotblast: %s: server counted %d forecasts, client observed %d",
			r.name, fcDelta, r.forecasts)
	}
	pre, _ := before.Histogram("hotserve_request_seconds", rl)
	post, ok := after.Histogram("hotserve_request_seconds", rl)
	if !ok {
		return fmt.Errorf("hotblast: %s: hotserve_request_seconds{route=%q} missing from /metrics", r.name, route)
	}
	window := post.Sub(pre)
	if window.Count == 0 {
		return fmt.Errorf("hotblast: %s: server recorded no %s latencies during the phase", r.name, route)
	}
	r.serverP99ms = window.P99() * 1e3
	return nil
}

// quantile returns the q-th latency (0 < q <= 1) of the sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// entry distills the phase into the shared benchjson shape.
func (r *phaseResult) entry(conc int) benchfmt.Entry {
	sort.Slice(r.lats, func(i, j int) bool { return r.lats[i] < r.lats[j] })
	secs := r.elapsed.Seconds()
	return benchfmt.Entry{
		Name:       r.name,
		Procs:      conc,
		Iterations: int64(len(r.lats)),
		Metrics: map[string]float64{
			"p50-ms":        ms(quantile(r.lats, 0.50)),
			"p90-ms":        ms(quantile(r.lats, 0.90)),
			"p99-ms":        ms(quantile(r.lats, 0.99)),
			"p999-ms":       ms(quantile(r.lats, 0.999)),
			"server-p99-ms": r.serverP99ms,
			"req/s":         float64(len(r.lats)) / secs,
			"forecasts/s":   float64(r.forecasts) / secs,
			"errors":        float64(r.errors),
			"retries":       float64(r.retries),
		},
	}
}

func (r *phaseResult) print(out io.Writer) {
	sort.Slice(r.lats, func(i, j int) bool { return r.lats[i] < r.lats[j] })
	fmt.Fprintf(out, "%s: %d requests in %v (%d errors, %d transient retries, server counters agree)\n",
		r.name, len(r.lats), r.elapsed.Round(time.Millisecond), r.errors, r.retries)
	fmt.Fprintf(out, "  p50 %.2fms  p90 %.2fms  p99 %.2fms  p999 %.2fms  server-p99 %.2fms  %.1f req/s  %.1f forecasts/s\n",
		ms(quantile(r.lats, 0.50)), ms(quantile(r.lats, 0.90)),
		ms(quantile(r.lats, 0.99)), ms(quantile(r.lats, 0.999)), r.serverP99ms,
		float64(len(r.lats))/r.elapsed.Seconds(), float64(r.forecasts)/r.elapsed.Seconds())
}
