package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/obs"
	"repro/internal/retry"
)

// fakeServe mimics the hotserve surface hotblast touches: /healthz with an
// artifact inventory, /forecast and /forecast/batch returning 200, and a
// /metrics endpoint whose counters stay consistent with the traffic — the
// real server's contract, which hotblast's audit enforces.
func fakeServe(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var singles, batches atomic.Int64
	reg := obs.NewRegistry()
	route := func(r string) obs.Label { return obs.Label{Key: "route", Value: r} }
	reqSingle := reg.Counter("hotserve_requests_total", "requests", route("/forecast"))
	reqBatch := reg.Counter("hotserve_requests_total", "requests", route("/forecast/batch"))
	forecasts := reg.Counter("hotserve_forecasts_total", "forecasts")
	latSingle := reg.Histogram("hotserve_request_seconds", "latency", obs.LatencyBuckets, route("/forecast"))
	latBatch := reg.Histogram("hotserve_request_seconds", "latency", obs.LatencyBuckets, route("/forecast/batch"))
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Handler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok",
			"models": []map[string]any{
				{"model": "RF-F1", "target": "hot-spot", "h": 3, "w": 7},
				{"model": "GBT-F1", "target": "become-hot-spot", "h": 3, "w": 7},
			},
		})
	})
	mux.HandleFunc("GET /forecast", func(w http.ResponseWriter, r *http.Request) {
		reqSingle.Inc()
		q := r.URL.Query()
		if q.Get("model") == "" || q.Get("target") == "" || q.Get("h") == "" || q.Get("w") == "" {
			http.Error(w, "ambiguous", http.StatusBadRequest)
			return
		}
		singles.Add(1)
		forecasts.Inc()
		latSingle.Observe(0.002)
		_ = json.NewEncoder(w).Encode(map[string]any{"top": []any{}})
	})
	mux.HandleFunc("POST /forecast/batch", func(w http.ResponseWriter, r *http.Request) {
		reqBatch.Inc()
		var req struct {
			Queries []json.RawMessage `json:"queries"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Queries) == 0 {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		batches.Add(int64(len(req.Queries)))
		forecasts.Add(uint64(len(req.Queries)))
		latBatch.Observe(0.010)
		results := make([]map[string]any, len(req.Queries))
		for i := range results {
			results[i] = map[string]any{"top": []any{}}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"results": results})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &singles, &batches
}

func TestHotblastEndToEnd(t *testing.T) {
	ts, singles, batches := fakeServe(t)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf strings.Builder
	err := run([]string{
		"-base", ts.URL, "-duration", "200ms", "-concurrency", "4",
		"-batch", "5", "-o", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if singles.Load() <= 2 { // warmup issues 2; the timed phase must add more
		t.Fatalf("only %d single requests reached the server", singles.Load())
	}
	if batches.Load() == 0 || batches.Load()%5 != 0 {
		t.Fatalf("batch queries = %d, want a positive multiple of 5", batches.Load())
	}
	report, err := benchfmt.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("report has %d entries, want 2: %v", len(report.Benchmarks), report.Benchmarks)
	}
	byName := map[string]benchfmt.Entry{}
	for _, e := range report.Benchmarks {
		byName[e.Name] = e
	}
	for _, name := range []string{"ServeForecast", "ServeForecastBatch"} {
		e, ok := byName[name]
		if !ok {
			t.Fatalf("missing entry %s", name)
		}
		if e.Procs != 4 || e.Iterations == 0 {
			t.Fatalf("%s: procs %d iterations %d", name, e.Procs, e.Iterations)
		}
		for _, key := range []string{"p50-ms", "p90-ms", "p99-ms", "p999-ms", "server-p99-ms", "req/s", "forecasts/s", "errors"} {
			if _, ok := e.Metrics[key]; !ok {
				t.Fatalf("%s: metric %s missing: %v", name, key, e.Metrics)
			}
		}
		if e.Metrics["p50-ms"] > e.Metrics["p999-ms"] {
			t.Fatalf("%s: p50 %v above p999 %v", name, e.Metrics["p50-ms"], e.Metrics["p999-ms"])
		}
		if e.Metrics["errors"] != 0 || e.Metrics["req/s"] <= 0 {
			t.Fatalf("%s: errors %v req/s %v", name, e.Metrics["errors"], e.Metrics["req/s"])
		}
		if e.Metrics["server-p99-ms"] <= 0 {
			t.Fatalf("%s: server-p99-ms = %v, want > 0", name, e.Metrics["server-p99-ms"])
		}
	}
	if s, b := byName["ServeForecast"], byName["ServeForecastBatch"]; b.Metrics["forecasts/s"] <= s.Metrics["forecasts/s"] {
		t.Fatalf("batching did not raise forecasts/s: single %v, batch %v",
			s.Metrics["forecasts/s"], b.Metrics["forecasts/s"])
	}

	// A second run -diff'ed against the first must pass the schema guard.
	buf.Reset()
	err = run([]string{
		"-base", ts.URL, "-duration", "100ms", "-concurrency", "2",
		"-batch", "5", "-diff", out,
	}, &buf)
	if err != nil {
		t.Fatalf("diff run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "schema matches baseline") {
		t.Fatalf("diff run output missing schema confirmation:\n%s", buf.String())
	}
}

func TestHotblastSchemaDiffFails(t *testing.T) {
	ts, _, _ := fakeServe(t)
	// Baseline demands a series hotblast does not produce.
	base := filepath.Join(t.TempDir(), "base.json")
	err := benchfmt.WriteFile(base, &benchfmt.Report{Benchmarks: []benchfmt.Entry{
		{Name: "ServeSomethingElse", Metrics: map[string]float64{"req/s": 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err = run([]string{"-base", ts.URL, "-duration", "100ms", "-concurrency", "2", "-diff", base}, &buf)
	if err == nil || !strings.Contains(err.Error(), "ServeSomethingElse") {
		t.Fatalf("schema regression not surfaced: %v", err)
	}
}

func TestHotblastRefusesBrokenServer(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer down.Close()
	var buf strings.Builder
	if err := run([]string{"-base", down.URL, "-duration", "100ms"}, &buf); err == nil {
		t.Fatal("unhealthy server accepted")
	}
	// Healthy /healthz but failing /forecast: the warmup must refuse.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok",
			"models": []map[string]any{{"model": "RF-F1", "target": "hot-spot", "h": 1, "w": 1}},
		})
	})
	mux.HandleFunc("GET /forecast", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	})
	sick := httptest.NewServer(mux)
	defer sick.Close()
	if err := run([]string{"-base", sick.URL, "-duration", "100ms"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "warmup") {
		t.Fatalf("failing forecast path not caught at warmup: %v", err)
	}
}

// A server whose /metrics counters disagree with the traffic it actually
// served must fail the run — the audit is the point of the scrape.
func TestHotblastAuditCatchesLyingServer(t *testing.T) {
	reg := obs.NewRegistry()
	requests := reg.Counter("hotserve_requests_total", "requests",
		obs.Label{Key: "route", Value: "/forecast"})
	reg.Counter("hotserve_forecasts_total", "forecasts") // never incremented: the lie
	lat := reg.Histogram("hotserve_request_seconds", "latency", obs.LatencyBuckets,
		obs.Label{Key: "route", Value: "/forecast"})
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Handler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok",
			"models": []map[string]any{{"model": "RF-F1", "target": "hot-spot", "h": 3, "w": 7}},
		})
	})
	mux.HandleFunc("GET /forecast", func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		lat.Observe(0.001)
		_ = json.NewEncoder(w).Encode(map[string]any{"top": []any{}})
	})
	liar := httptest.NewServer(mux)
	defer liar.Close()
	var buf strings.Builder
	err := run([]string{"-base", liar.URL, "-duration", "100ms", "-concurrency", "2", "-batch", "0"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "forecasts") {
		t.Fatalf("counter mismatch not surfaced: %v", err)
	}
}

func TestHotblastFlagValidation(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-concurrency", "0"}, &buf); err == nil {
		t.Fatal("zero concurrency accepted")
	}
	if err := run([]string{"-duration", "0s"}, &buf); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// TestRunPhaseRetriesTransient: transient failures are absorbed by backoff
// and counted as retries, never as errors; non-transient failures are
// surfaced immediately without a single re-issue.
func TestRunPhaseRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	res := runPhase("ServeForecast", 1, 300*time.Millisecond, func(iter int) (int, error) {
		if calls.Add(1) <= 2 {
			return 0, retry.MarkTransient(fmt.Errorf("connection reset by proxy"))
		}
		return 1, nil
	})
	if res.retries != 2 {
		t.Fatalf("retries = %d, want 2 (calls=%d)", res.retries, calls.Load())
	}
	if res.errors != 0 {
		t.Fatalf("transient failures leaked into errors: %d", res.errors)
	}
	if len(res.lats) == 0 || res.forecasts == 0 {
		t.Fatalf("phase recorded no successes: lats=%d forecasts=%d", len(res.lats), res.forecasts)
	}
	e := res.entry(1)
	if e.Metrics["retries"] != 2 {
		t.Fatalf(`entry metric "retries" = %v, want 2`, e.Metrics["retries"])
	}

	// HTTP-level failures (the server counted them) must not be retried:
	// every issue call maps to exactly one error, zero retries.
	calls.Store(0)
	res = runPhase("ServeForecast", 1, 50*time.Millisecond, func(iter int) (int, error) {
		calls.Add(1)
		return 0, fmt.Errorf("HTTP 503")
	})
	if res.retries != 0 {
		t.Fatalf("non-transient failures were retried %d times", res.retries)
	}
	if res.errors != calls.Load() {
		t.Fatalf("errors = %d, issue calls = %d; audit would unbalance", res.errors, calls.Load())
	}
}

func TestQuantile(t *testing.T) {
	lats := make([]time.Duration, 1000)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Millisecond}, {0.99, 990 * time.Millisecond}, {0.999, 999 * time.Millisecond}, {1, 1000 * time.Millisecond}} {
		if got := quantile(lats, tc.q); got != tc.want {
			t.Fatalf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantile(lats[:1], 0.5); got != time.Millisecond {
		t.Fatalf("single-sample quantile = %v", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}
