// Command hotgen generates a synthetic cellular-network KPI dataset and
// writes it to disk in gob format for the other tools to consume.
//
// Usage:
//
//	hotgen -out network.gob -sectors 1000 -weeks 18 -seed 1
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point: it parses args, generates the dataset
// and reports the outcome on out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotgen", flag.ContinueOnError)
	var (
		outPath = fs.String("out", "network.gob", "output path")
		sectors = fs.Int("sectors", 1000, "approximate sector count")
		weeks   = fs.Int("weeks", 18, "observation window in weeks")
		seed    = fs.Uint64("seed", 1, "random seed")
		missing = fs.Float64("missing", 0.045, "target missing-value fraction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := simnet.DefaultConfig()
	cfg.Sectors = *sectors
	cfg.Weeks = *weeks
	cfg.Seed = *seed
	cfg.MissingTarget = *missing
	if err := cfg.Validate(); err != nil {
		return err
	}
	ds, err := simnet.Generate(cfg)
	if err != nil {
		return err
	}
	if err := ds.SaveFile(*outPath); err != nil {
		return err
	}
	info, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d sectors x %d hours x %d KPIs (%.1f MB, %.1f%% missing)\n",
		*outPath, ds.K.N, ds.K.T, ds.K.F, float64(info.Size())/1e6, 100*ds.K.MissingFraction())
	return nil
}
