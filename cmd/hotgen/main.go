// Command hotgen generates a synthetic cellular-network KPI dataset and
// writes it to disk in gob format for the other tools to consume.
//
// Usage:
//
//	hotgen -out network.gob -sectors 1000 -weeks 18 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hotgen: ")
	var (
		out     = flag.String("out", "network.gob", "output path")
		sectors = flag.Int("sectors", 1000, "approximate sector count")
		weeks   = flag.Int("weeks", 18, "observation window in weeks")
		seed    = flag.Uint64("seed", 1, "random seed")
		missing = flag.Float64("missing", 0.045, "target missing-value fraction")
	)
	flag.Parse()

	cfg := simnet.DefaultConfig()
	cfg.Sectors = *sectors
	cfg.Weeks = *weeks
	cfg.Seed = *seed
	cfg.MissingTarget = *missing
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	ds, err := simnet.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d sectors x %d hours x %d KPIs (%.1f MB, %.1f%% missing)\n",
		*out, ds.K.N, ds.K.T, ds.K.F, float64(info.Size())/1e6, 100*ds.K.MissingFraction())
}
