package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simnet"
)

// TestRunSmoke generates a tiny dataset end to end and asserts the report
// line parses back to the written file's shape.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "net.gob")
	var buf strings.Builder
	err := run([]string{"-out", out, "-sectors", "60", "-weeks", "4", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	got := buf.String()
	if !strings.HasPrefix(got, "wrote "+out+":") {
		t.Fatalf("unexpected report: %q", got)
	}
	var sectors, hours, kpis int
	var mb, missing float64
	tail := got[len("wrote "+out+": "):]
	if _, err := fmt.Sscanf(tail, "%d sectors x %d hours x %d KPIs (%f MB, %f%% missing)",
		&sectors, &hours, &kpis, &mb, &missing); err != nil {
		t.Fatalf("unparseable report %q: %v", got, err)
	}
	if sectors < 40 || hours != 4*7*24 || kpis != simnet.NumKPIs {
		t.Fatalf("implausible shape: %d sectors x %d hours x %d KPIs", sectors, hours, kpis)
	}

	ds, err := simnet.LoadFile(out)
	if err != nil {
		t.Fatalf("written dataset does not load: %v", err)
	}
	if ds.K.N != sectors || ds.K.T != hours {
		t.Fatalf("report (%d x %d) disagrees with file (%d x %d)", sectors, hours, ds.K.N, ds.K.T)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-sectors", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("zero sectors accepted")
	}
}
