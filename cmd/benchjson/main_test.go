package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	transcript := `goos: linux
goarch: amd64
pkg: repro
BenchmarkFitForestExact-8   	       1	945123456 ns/op	123456 B/op	    7890 allocs/op
BenchmarkFitForestHist-8    	       4	270123456 ns/op	 65432 B/op	    1234 allocs/op
BenchmarkServeBatch         	     100	   1234567 ns/op	      12345 forecasts/s
--- BENCH: BenchmarkSomething
PASS
ok  	repro	12.3s
`
	report, err := parse(strings.NewReader(transcript), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(report.Benchmarks), report.Benchmarks)
	}
	e := report.Benchmarks[0]
	if e.Name != "FitForestExact" || e.Procs != 8 || e.Iterations != 1 {
		t.Fatalf("entry 0 = %v", e)
	}
	if e.Metrics["ns/op"] != 945123456 || e.Metrics["B/op"] != 123456 || e.Metrics["allocs/op"] != 7890 {
		t.Fatalf("entry 0 metrics = %v", e.Metrics)
	}
	// No -procs suffix and a custom metric unit.
	e = report.Benchmarks[2]
	if e.Name != "ServeBatch" || e.Procs != 1 || e.Metrics["forecasts/s"] != 12345 {
		t.Fatalf("entry 2 = %v", e)
	}
}

func TestParseMatchFilter(t *testing.T) {
	transcript := `BenchmarkFitForestHist-8 1 5 ns/op
BenchmarkServeBatch-8 1 5 ns/op
`
	report, err := parse(strings.NewReader(transcript), regexp.MustCompile(`^Fit`))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 1 || report.Benchmarks[0].Name != "FitForestHist" {
		t.Fatalf("filter kept %v", report.Benchmarks)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"Benchmark",                     // no metrics
		"BenchmarkX-4 notanint 5 ns/op", // bad iteration count
		"BenchmarkX-4 2 five ns/op",     // bad value
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise line parsed as benchmark: %q", line)
		}
	}
}
