// Command benchjson distills `go test -bench` text output into JSON, so
// CI bench artifacts are machine-readable and the perf trajectory can be
// tracked across PRs without scraping free-form logs.
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkFit' -benchmem -benchtime=1x . | benchjson > BENCH_train.json
//
// Each benchmark line becomes one entry with its parallelism suffix,
// iteration count and every reported metric (ns/op, B/op, allocs/op and
// any custom b.ReportMetric units). Non-benchmark lines are ignored, so
// the tool can consume a full `go test` transcript.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	// Name is the benchmark name without the "Benchmark" prefix and the
	// -procs suffix (e.g. "FitForestHist").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the run (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair (ns/op, B/op,
	// allocs/op, custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output path (default stdout)")
	match := flag.String("match", "", "keep only benchmarks whose name (without the Benchmark prefix) matches this regexp")
	flag.Parse()
	var keep *regexp.Regexp
	if *match != "" {
		var err error
		if keep, err = regexp.Compile(*match); err != nil {
			log.Fatalf("bad -match: %v", err)
		}
	}
	report, err := parse(os.Stdin, keep)
	if err != nil {
		log.Fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
}

// parse scans a go-test transcript for benchmark result lines, keeping
// only names matched by keep (nil keeps everything).
func parse(r io.Reader, keep *regexp.Regexp) (*Report, error) {
	report := &Report{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		entry, ok := parseLine(sc.Text())
		if ok && (keep == nil || keep.MatchString(entry.Name)) {
			report.Benchmarks = append(report.Benchmarks, entry)
		}
	}
	return report, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  value unit [value unit]..."
// result line; ok is false for anything else.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if cut := strings.LastIndex(name, "-"); cut >= 0 {
		if p, err := strconv.Atoi(name[cut+1:]); err == nil {
			procs = p
			name = name[:cut]
		}
	}
	iterations, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		metrics[fields[i+1]] = value
	}
	if len(metrics) == 0 {
		return Entry{}, false
	}
	return Entry{Name: name, Procs: procs, Iterations: iterations, Metrics: metrics}, true
}

// String renders an entry for debugging.
func (e Entry) String() string {
	return fmt.Sprintf("%s-%d x%d %v", e.Name, e.Procs, e.Iterations, e.Metrics)
}
