// Command benchjson distills `go test -bench` text output into JSON, so
// CI bench artifacts are machine-readable and the perf trajectory can be
// tracked across PRs without scraping free-form logs.
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkFit' -benchmem -benchtime=1x . | benchjson > BENCH_train.json
//
// Each benchmark line becomes one entry with its parallelism suffix,
// iteration count and every reported metric (ns/op, B/op, allocs/op and
// any custom b.ReportMetric units). Non-benchmark lines are ignored, so
// the tool can consume a full `go test` transcript. The document shape
// lives in internal/benchfmt, shared with the hotblast load generator.
package main

import (
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"
	"regexp"

	"repro/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output path (default stdout)")
	match := flag.String("match", "", "keep only benchmarks whose name (without the Benchmark prefix) matches this regexp")
	diff := flag.String("diff", "", "baseline BENCH_*.json to schema-compare the parsed report against (fails on vanished series)")
	flag.Parse()
	var keep *regexp.Regexp
	if *match != "" {
		var err error
		if keep, err = regexp.Compile(*match); err != nil {
			log.Fatalf("bad -match: %v", err)
		}
	}
	report, err := benchfmt.Parse(os.Stdin, keep)
	if err != nil {
		log.Fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if *diff != "" {
		base, err := benchfmt.ReadFile(*diff)
		if err != nil {
			log.Fatal(err)
		}
		if err := benchfmt.CompareSchema(report, base); err != nil {
			log.Fatal(err)
		}
	}
}
