// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation. One testing.B benchmark per table /
// figure; each prints the same rows or series the paper reports (run with
// -benchtime=1x to execute each experiment once):
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Shapes to compare against the paper (EXPERIMENTS.md records a full run):
//
//	Fig 6  hours/day mode at 16h; days/week mode at 1
//	Fig 7  consecutive-hour peaks at 16/40/64; day peaks at 7x and 7x+6
//	Tab 2  full-week and workweek patterns at the top
//	Fig 8  same-tower correlation spike; distance-independent twins
//	Fig 9  classifiers > Average > Persist/Trend; Persist peaks h=7,14
//	Fig 10 RF models beat Average by ~10-20% on hot spots
//	Fig 11 classifiers >> baselines for h <= 15 on emerging hot spots
//	Fig 12 delta vs Average collapses for h >= 19
//	Fig 13 lift plateaus at w = 7
//	Fig 15 scores dominate importance; calendar negligible
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/mltree"
	"repro/internal/randx"
	"repro/internal/simnet"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

// env prepares one shared small-scale environment for all benches.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := experiments.SmallScale()
		scale.Sectors = 400
		benchEnv, benchEnvErr = experiments.Prepare(scale)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

func BenchmarkFig01KPIExamples(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig01KPIExamples(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig02ScoreAndLabel(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig02ScoreAndLabel(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig03LabelRaster(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig03LabelRaster(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig04ScoreHistogram(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig04ScoreHistogram(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig05Imputation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig05Imputation(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig06HotSpotHistograms(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig06HotSpotHistograms(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig07ConsecutiveRuns(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig07ConsecutiveRuns(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkTab02WeeklyPatterns(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Tab02WeeklyPatterns(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig08SpatialCorrelation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig08SpatialCorrelation(e)
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkSecVATemporalStability(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStabilityExperiment(e, forecast.BeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// hot-spot horizon results feed both Fig 9 and Fig 10; run once per bench.
func BenchmarkFig09HotspotLift(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHorizonExperiment(e, forecast.BeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig10HotspotDelta(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHorizonExperiment(e, forecast.BeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\nmean delta vs Average: Tree %+.0f%% RF-R %+.0f%% RF-F1 %+.0f%% RF-F2 %+.0f%% (paper: Tree +6%%, RF-F1 +14%%)",
				res.MeanDelta("Tree", nil), res.MeanDelta("RF-R", nil),
				res.MeanDelta("RF-F1", nil), res.MeanDelta("RF-F2", nil))
		}
	}
}

func BenchmarkFig11BecomeLift(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHorizonExperiment(e, forecast.BecomeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig12BecomeDelta(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHorizonExperiment(e, forecast.BecomeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			short := func(h int) bool { return h <= 15 }
			long := func(h int) bool { return h >= 19 }
			b.Logf("\nbecome delta vs Average: short horizons %+.0f%%, long horizons %+.0f%% (paper: up to +153%% short, ~0%% for h>=19)",
				res.MeanDelta("RF-F1", short), res.MeanDelta("RF-F1", long))
		}
	}
}

func BenchmarkFig13HotspotPastWindow(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWindowExperiment(e, forecast.BeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig14BecomePastWindow(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWindowExperiment(e, forecast.BecomeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig15FeatureImportance(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunImportanceExperiment(e, forecast.BeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFig16BecomeImportance(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunImportanceExperiment(e, forecast.BecomeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md §7 calls out.

// BenchmarkAblationBalancedWeights compares balanced vs unbalanced sample
// weights for the single-tree model (DESIGN.md §7).
func BenchmarkAblationBalancedWeights(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationBalancedWeights(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkAblationSpatial tests the paper's spatially unconstrained
// training (Fig. 8C conclusion) against a city-local model (DESIGN.md §7).
func BenchmarkAblationSpatial(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSpatial(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkPRCurves reports the precision-recall operating points behind
// the average-precision measure (Sec. IV-B).
func BenchmarkPRCurves(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPRCurves(e, forecast.BeHot)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

// BenchmarkAblationExtractors compares the cost of the three feature
// representations on identical windows.
func BenchmarkAblationExtractors(b *testing.B) {
	e := env(b)
	prevModel := e.Ctx.ModelCacheBytes
	e.Ctx.ModelCacheBytes = -1 // measure the full fit each iteration, not a cache hit
	defer func() { e.Ctx.ModelCacheBytes = prevModel }()
	for _, m := range []forecast.Model{forecast.NewRFR(), forecast.NewRFF1(), forecast.NewRFF2()} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Forecast(e.Ctx, forecast.BeHot, 60, 5, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionGBT runs the gradient-boosted extension model against
// RF-F1 at a short and a long horizon — the paper's conclusion conjectures
// higher-capacity learners help most at long range.
func BenchmarkExtensionGBT(b *testing.B) {
	e := env(b)
	prevModel := e.Ctx.ModelCacheBytes
	e.Ctx.ModelCacheBytes = -1 // measure the full fit each iteration, not a cache hit
	defer func() { e.Ctx.ModelCacheBytes = prevModel }()
	for _, h := range []int{1, 26} {
		for _, m := range []forecast.Model{forecast.NewRFF1(), forecast.NewGBT()} {
			b.Run(fmt.Sprintf("%s/h=%d", m.Name(), h), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scores, err := m.Forecast(e.Ctx, forecast.BeHot, 60, h, 7)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						labels := e.Set.Yd.Col(60 + h)
						ap := eval.AveragePrecision(scores, labels)
						b.Logf("%s h=%d: AP %.3f (lift %.1f)", m.Name(), h, ap,
							eval.Lift(ap, eval.Prevalence(labels)))
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel sweep engine: the same RF-F1 grid at increasing worker counts.
// Comparing the w=1 line against w=NumCPU demonstrates the engine's
// wall-clock speedup on multicore hardware (the records are bit-identical
// at every worker count; TestSweepParallelMatchesSequential enforces it).

func BenchmarkSweepWorkers(b *testing.B) {
	e := env(b)
	prevFit, prevCache, prevModel := e.Ctx.FitWorkers, e.Ctx.CacheBytes, e.Ctx.ModelCacheBytes
	e.Ctx.FitWorkers = 1       // isolate the sweep pool as the only lever
	e.Ctx.CacheBytes = -1      // uncached: this bench is the pre-cache baseline
	e.Ctx.ModelCacheBytes = -1 // refit per iteration: cached fits would erase the scaling signal
	defer func() {
		e.Ctx.FitWorkers, e.Ctx.CacheBytes, e.Ctx.ModelCacheBytes = prevFit, prevCache, prevModel
	}()
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := forecast.Sweep(e.Ctx, forecast.SweepConfig{
					Models:        []forecast.Model{forecast.NewRFF1()},
					Target:        forecast.BeHot,
					Ts:            []int{56, 61, 66, 71},
					Hs:            []int{1, 5, 14},
					Ws:            []int{7},
					RandomRepeats: 5,
					Workers:       workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepCached measures the feature-plan compiler's point: the
// grid below holds 4 horizons per distinct (t, w), so the cached arm
// builds each distinct (end, w) matrix once and serves every other grid
// point from the LRU, while the uncached arm re-extracts per point (the
// BenchmarkSweepWorkers behaviour). Run with -benchmem: the cached arm
// should also allocate substantially less.
func BenchmarkSweepCached(b *testing.B) {
	e := env(b)
	prevFit, prevCache, prevModel := e.Ctx.FitWorkers, e.Ctx.CacheBytes, e.Ctx.ModelCacheBytes
	e.Ctx.FitWorkers = 1
	e.Ctx.ModelCacheBytes = -1 // isolate the feature cache as the only lever
	defer func() {
		e.Ctx.FitWorkers, e.Ctx.CacheBytes, e.Ctx.ModelCacheBytes = prevFit, prevCache, prevModel
	}()
	cfg := forecast.SweepConfig{
		Models:        []forecast.Model{forecast.NewRFF1()},
		Target:        forecast.BeHot,
		Ts:            []int{56, 61, 66, 71},
		Hs:            []int{1, 3, 5, 14}, // 4 points per distinct (t, w)
		Ws:            []int{7},
		RandomRepeats: 5,
		Workers:       runtime.NumCPU(),
	}
	for _, arm := range []struct {
		name  string
		bytes int64
	}{
		{"uncached", -1},
		{"cached", 0}, // forecast.DefaultCacheBytes
	} {
		b.Run(arm.name, func(b *testing.B) {
			e.Ctx.CacheBytes = arm.bytes
			for i := 0; i < b.N; i++ {
				if _, err := forecast.Sweep(e.Ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitOncePredictMany measures the Fit/Predict split's point: the
// serving loop ships one trained artifact and predicts each new day from
// it, where the pre-split API refit the model inside every Forecast call.
// The grid covers 4 predict days per training cutoff — the artifact fitted
// at t=56 (cutoff 51) serves forecast days 61..64, i.e. 4 effective
// horizons from one cutoff — so fit-once should beat fit-per-point by well
// over 2x (one forest fit amortised over 4 predictions).
func BenchmarkFitOncePredictMany(b *testing.B) {
	e := env(b)
	prevFit, prevModel := e.Ctx.FitWorkers, e.Ctx.ModelCacheBytes
	e.Ctx.FitWorkers = 1
	e.Ctx.ModelCacheBytes = -1 // the comparison is explicit Fit/Predict vs refit, not cache hits
	defer func() { e.Ctx.FitWorkers, e.Ctx.ModelCacheBytes = prevFit, prevModel }()
	model := forecast.NewRFF1()
	const h, w = 5, 7
	ts := []int{56, 57, 58, 59} // 4 predict days off the first artifact's cutoff
	b.Run("fit-per-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range ts {
				if _, err := model.Forecast(e.Ctx, forecast.BeHot, t, h, w); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fit-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := model.Fit(e.Ctx, forecast.BeHot, ts[0], h, w)
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range ts {
				if _, err := tr.Predict(e.Ctx, t, w); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the substrates.

func BenchmarkGenerate(b *testing.B) {
	cfg := simnet.DefaultConfig()
	cfg.Sectors = 200
	cfg.Weeks = 6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := simnet.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	rng := randx.New(1, 2)
	n, f := 2000, 100
	x := make([]float64, n*f)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < f; j++ {
			v := rng.Norm(0, 1)
			x[i*f+j] = v
			if j < 5 {
				s += v
			}
		}
		if s > 0 {
			y[i] = 1
		}
	}
	w := mltree.BalancedWeights(y, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := mltree.DefaultForestConfig()
		cfg.NumTrees = 10
		cfg.Seed = uint64(i + 1)
		if _, err := mltree.FitForest(x, n, f, y, w, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Histogram-engine fit benchmarks: the exact (sort-based) split search
// against the binned O(bins) one, per learner, on one shared synthetic
// training set. Each hist arm includes its quantization cost — in the
// serving/sweep stack the binned matrix is additionally cached and shared
// across models and grid points, so these are conservative. CI runs them
// with -benchmem and distills a machine-readable BENCH_train.json
// baseline via cmd/benchjson; the acceptance bar is a >=3x forest/GBT
// speedup of hist over exact.

var (
	trainBenchOnce sync.Once
	trainBenchX    []float64
	trainBenchY    []int
	trainBenchW    []float64
)

const (
	trainBenchN = 4000
	trainBenchF = 100
)

// trainBenchData builds the shared fit-benchmark training set: the
// BenchmarkForestFit distribution (five informative of 100 features) at
// 4000 instances, roughly the default-scale sweep's training-block size
// (TrainDays x sectors).
func trainBenchData() ([]float64, []int, []float64) {
	trainBenchOnce.Do(func() {
		rng := randx.New(11, 12)
		n, f := trainBenchN, trainBenchF
		trainBenchX = make([]float64, n*f)
		trainBenchY = make([]int, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < f; j++ {
				v := rng.Norm(0, 1)
				trainBenchX[i*f+j] = v
				if j < 5 {
					s += v
				}
			}
			if s > 0 {
				trainBenchY[i] = 1
			}
		}
		trainBenchW = mltree.BalancedWeights(trainBenchY, 2)
	})
	return trainBenchX, trainBenchY, trainBenchW
}

func benchFitTree(b *testing.B, algo mltree.SplitAlgo) {
	x, y, w := trainBenchData()
	cfg := mltree.TreeConfig()
	cfg.Algo = algo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := randx.New(uint64(i+1), 7)
		if _, err := mltree.FitTree(x, trainBenchN, trainBenchF, y, w, 2, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitTreeExact(b *testing.B) { benchFitTree(b, mltree.SplitExact) }
func BenchmarkFitTreeHist(b *testing.B)  { benchFitTree(b, mltree.SplitHist) }

func benchFitForest(b *testing.B, algo mltree.SplitAlgo) {
	x, y, w := trainBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := mltree.DefaultForestConfig()
		cfg.Tree.Algo = algo
		cfg.Seed = uint64(i + 1)
		if _, err := mltree.FitForest(x, trainBenchN, trainBenchF, y, w, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitForestExact(b *testing.B) { benchFitForest(b, mltree.SplitExact) }
func BenchmarkFitForestHist(b *testing.B)  { benchFitForest(b, mltree.SplitHist) }

func benchFitGBT(b *testing.B, algo mltree.SplitAlgo) {
	x, y, w := trainBenchData()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := mltree.DefaultGBTConfig()
		cfg.Algo = algo
		cfg.Seed = uint64(i + 1)
		if _, err := mltree.FitGBT(x, trainBenchN, trainBenchF, y, w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitGBTExact(b *testing.B) { benchFitGBT(b, mltree.SplitExact) }
func BenchmarkFitGBTHist(b *testing.B)  { benchFitGBT(b, mltree.SplitHist) }

// ---------------------------------------------------------------------------
// Batched inference benchmarks: the walked (pointer-chasing, row-at-a-time)
// predict path against the flat SoA batch engine, per learner, scoring the
// shared 4000x100 block — the all-sector matrix shape artifact.Predict
// serves. Both arms reuse preallocated output (and scratch) buffers, so
// steady-state allocs/op is 0 and the delta is pure traversal cost; the
// acceptance bar is a >=3x forecasts/s win for the flat forest and GBT.
// "forecasts/s" counts scored rows (sector scores) per wall second.

var (
	predictBenchOnce   sync.Once
	predictBenchErr    error
	predictBenchTree   *mltree.Tree
	predictBenchForest *mltree.Forest
	predictBenchGBT    *mltree.GBT
)

// predictBenchModels fits one model of each kind on the shared training
// set (hist engine — the fit is setup cost, not the measurement).
func predictBenchModels(b *testing.B) (*mltree.Tree, *mltree.Forest, *mltree.GBT) {
	x, y, w := trainBenchData()
	predictBenchOnce.Do(func() {
		treeCfg := mltree.TreeConfig()
		treeCfg.Algo = mltree.SplitHist
		predictBenchTree, predictBenchErr = mltree.FitTree(
			x, trainBenchN, trainBenchF, y, w, 2, treeCfg, randx.New(21, 22))
		if predictBenchErr != nil {
			return
		}
		foCfg := mltree.DefaultForestConfig()
		foCfg.Tree.Algo = mltree.SplitHist
		foCfg.Seed = 23
		predictBenchForest, predictBenchErr = mltree.FitForest(
			x, trainBenchN, trainBenchF, y, w, 2, foCfg)
		if predictBenchErr != nil {
			return
		}
		gbtCfg := mltree.DefaultGBTConfig()
		gbtCfg.Algo = mltree.SplitHist
		gbtCfg.Seed = 25
		predictBenchGBT, predictBenchErr = mltree.FitGBT(
			x, trainBenchN, trainBenchF, y, w, gbtCfg)
	})
	if predictBenchErr != nil {
		b.Fatal(predictBenchErr)
	}
	return predictBenchTree, predictBenchForest, predictBenchGBT
}

// benchPredictWalked measures the per-row pointer path: one scratch
// probability buffer, score() per row, as artifact.Predict's fallback
// does.
func benchPredictWalked(b *testing.B, score func(row, probs []float64) float64) {
	x, _, _ := trainBenchData()
	out := make([]float64, trainBenchN)
	probs := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < trainBenchN; r++ {
			out[r] = score(x[r*trainBenchF:(r+1)*trainBenchF], probs)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(trainBenchN)*float64(b.N)/b.Elapsed().Seconds(), "forecasts/s")
}

// benchPredictFlat measures the flat engine's one-call batch path.
func benchPredictFlat(b *testing.B, scoreBatch func(x []float64, n int, out []float64)) {
	x, _, _ := trainBenchData()
	out := make([]float64, trainBenchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scoreBatch(x, trainBenchN, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(trainBenchN)*float64(b.N)/b.Elapsed().Seconds(), "forecasts/s")
}

func BenchmarkPredictBatchTreeWalked(b *testing.B) {
	tree, _, _ := predictBenchModels(b)
	benchPredictWalked(b, func(row, probs []float64) float64 {
		tree.PredictProbaInto(row, probs)
		return probs[1]
	})
}

func BenchmarkPredictBatchTreeFlat(b *testing.B) {
	tree, _, _ := predictBenchModels(b)
	benchPredictFlat(b, forceFloat(tree.Flatten()).ScoreBatch)
}

// forceFloat pins a flat model to the float-keyed kernels so the Flat
// benchmarks keep measuring that path now that hist-trained models
// default to the binned descent; the Binned benchmarks measure the
// default on the same models.
func forceFloat[M interface{ SetFloatDescent(bool) }](m M) M {
	m.SetFloatDescent(true)
	return m
}

// requireBinned asserts the bench model actually compiled a binned twin,
// so the Binned benchmarks can never silently measure the float path.
func requireBinned[M interface{ DescentMode() string }](b *testing.B, m M) M {
	if m.DescentMode() != "binned" {
		b.Fatalf("bench model descent mode %q, want binned", m.DescentMode())
	}
	return m
}

func BenchmarkPredictBatchTreeBinned(b *testing.B) {
	tree, _, _ := predictBenchModels(b)
	ft := tree.Flatten()
	ft.SetFloatDescent(false) // lone trees default to float; opt in
	benchPredictFlat(b, requireBinned(b, ft).ScoreBatch)
}

func BenchmarkPredictBatchForestWalked(b *testing.B) {
	_, forest, _ := predictBenchModels(b)
	benchPredictWalked(b, func(row, probs []float64) float64 {
		forest.PredictProbaInto(row, probs)
		return probs[1]
	})
}

func BenchmarkPredictBatchForestFlat(b *testing.B) {
	_, forest, _ := predictBenchModels(b)
	benchPredictFlat(b, forceFloat(forest.Flatten()).ScoreBatch)
}

func BenchmarkPredictBatchForestBinned(b *testing.B) {
	_, forest, _ := predictBenchModels(b)
	benchPredictFlat(b, requireBinned(b, forest.Flatten()).ScoreBatch)
}

func BenchmarkPredictBatchGBTWalked(b *testing.B) {
	_, _, gbt := predictBenchModels(b)
	benchPredictWalked(b, func(row, probs []float64) float64 {
		gbt.PredictProbaInto(row, probs)
		return probs[1]
	})
}

func BenchmarkPredictBatchGBTFlat(b *testing.B) {
	_, _, gbt := predictBenchModels(b)
	benchPredictFlat(b, forceFloat(gbt.Flatten()).ScoreBatch)
}

func BenchmarkPredictBatchGBTBinned(b *testing.B) {
	_, _, gbt := predictBenchModels(b)
	benchPredictFlat(b, requireBinned(b, gbt.Flatten()).ScoreBatch)
}
